"""The verification scenario grid: small configurations worth exhausting.

Every scenario here is small enough for :func:`repro.verify.checker.explore`
to enumerate to fixpoint, and each one targets a specific slice of the
paper's claims:

* the fault-free rings and the line exercise the normal G/P life cycle
  (first attempt, reset on routing, reset on release);
* the permanent link-down wedge tests whether each mechanism *eventually*
  flags a fault-induced deadlock — the honest known split: counter-based
  mechanisms (ndm, pdm) watch channel inactivity counters that a dead,
  unoccupied channel never advances, so they provably never fire, while
  the blocked-header timeout and the probe's dead-end self-detection do;
* the transient window checks that wedges which heal do not trip the
  liveness check (the bad-state subgraph must stay acyclic);
* the vc-stuck / counter-lag schedules drive the fault-state encodings
  (stuck masks, negative raw counters) through the quotient;
* ``ring2-promotion`` ports the selective-promotion scenario family of
  the paper's Figures 3/4 onto an exhaustively checkable 2-node config:
  a transient mid-transfer stall forces the I-flag set/reset path, so
  every promotion in the state space crosses the audited rule sites;
* ``ring4-cross`` (slow) is the true routing-deadlock scenario: opposite
  nodes on a 4-ring, both directions minimal, so the adversary can close
  a cyclic hold-wait chain with no faults at all.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.verify.scenario import (
    PERMANENT,
    MessageSpec,
    VerifyCase,
    VerifyScenario,
)

#: Mechanisms every scenario is checked under (the NDM twice: once per
#: promotion variant).  ``(mechanism, selective_promotion)`` pairs.
MECHANISM_GRID: Tuple[Tuple[str, bool], ...] = (
    ("ndm", False),
    ("ndm", True),
    ("pdm", False),
    ("timeout", False),
    ("probe", False),
)


def _link_down(channel: int, start: int, end: int) -> Dict[str, Any]:
    return {"kind": "link-down", "start": start, "end": end, "channel": channel}


def ring2_basic() -> VerifyScenario:
    """Two nodes exchanging one message each; the minimal full life cycle."""
    return VerifyScenario(
        name="ring2-basic",
        messages=(
            MessageSpec(source=0, dest=1, length=2, earliest=0, latest=1),
            MessageSpec(source=1, dest=0, length=2, earliest=0, latest=1),
        ),
    )


def ring2_pair() -> VerifyScenario:
    """Two messages from one source share a single link and ejection port."""
    return VerifyScenario(
        name="ring2-pair",
        messages=(
            MessageSpec(source=0, dest=1, length=2, earliest=0, latest=2),
            MessageSpec(source=0, dest=1, length=2, earliest=0, latest=2),
            MessageSpec(source=1, dest=0, length=2, earliest=0, latest=1),
        ),
    )


def ring3_basic() -> VerifyScenario:
    """Three-node ring, each node forwarding one hop clockwise."""
    return VerifyScenario(
        name="ring3-basic",
        radix=3,
        messages=(
            MessageSpec(source=0, dest=1, length=2, earliest=0, latest=1),
            MessageSpec(source=1, dest=2, length=2, earliest=0, latest=1),
            MessageSpec(source=2, dest=0, length=2, earliest=0, latest=1),
        ),
    )


def line3_basic() -> VerifyScenario:
    """Three-node line (mesh): two-hop worms holding a middle channel."""
    return VerifyScenario(
        name="line3-basic",
        topology="mesh",
        radix=3,
        messages=(
            MessageSpec(source=0, dest=2, length=2, earliest=0, latest=1),
            MessageSpec(source=2, dest=0, length=2, earliest=0, latest=1),
        ),
    )


def ring2_linkdown() -> VerifyScenario:
    """Permanent link-down wedge: message 0 can never reach node 1.

    Channel 0 is the only 0-to-1 link on the 2-ring, so message 0 is
    oracle-deadlocked (fault-aware) as soon as its first routing attempt
    fails, and stays so forever.  The 0-FN liveness check then asks: does
    the mechanism under test *eventually* mark it?
    """
    return VerifyScenario(
        name="ring2-linkdown",
        messages=(
            MessageSpec(source=0, dest=1, length=2, earliest=0, latest=0),
            MessageSpec(source=1, dest=0, length=2, earliest=0, latest=1),
        ),
        faults=(_link_down(channel=0, start=0, end=PERMANENT),),
        fault_class="link-down-permanent",
    )


def ring2_linkdown_transient() -> VerifyScenario:
    """A healing link-down window: the wedge must dissolve, not refute."""
    return VerifyScenario(
        name="ring2-linkdown-transient",
        messages=(
            MessageSpec(source=0, dest=1, length=2, earliest=0, latest=1),
            MessageSpec(source=1, dest=0, length=2, earliest=0, latest=1),
        ),
        faults=(_link_down(channel=0, start=1, end=4),),
        fault_class="link-down-transient",
    )


def ring2_vcstuck() -> VerifyScenario:
    """One stuck lane out of two: progress continues on the survivor."""
    return VerifyScenario(
        name="ring2-vcstuck",
        vcs_per_channel=2,
        messages=(
            MessageSpec(source=0, dest=1, length=2, earliest=0, latest=1),
            MessageSpec(source=1, dest=0, length=2, earliest=0, latest=1),
        ),
        faults=(
            {
                "kind": "vc-stuck",
                "start": 0,
                "end": PERMANENT,
                "channel": 0,
                "lane": 0,
            },
        ),
        fault_class="vc-stuck",
    )


def ring2_counterlag() -> VerifyScenario:
    """A lagged inactivity counter: threshold crossings move later."""
    return VerifyScenario(
        name="ring2-counterlag",
        messages=(
            MessageSpec(source=0, dest=1, length=2, earliest=0, latest=1),
            MessageSpec(source=1, dest=0, length=2, earliest=0, latest=1),
        ),
        faults=(
            {
                "kind": "counter-lag",
                "start": 1,
                "end": 2,
                "channel": 0,
                "lag": 2,
            },
        ),
        fault_class="counter-lag",
    )


def ring2_promotion() -> VerifyScenario:
    """Figures 3/4 selective-promotion family on a 2-node config.

    A three-flit worm is mid-transfer over channel 0 when the link drops
    for three cycles: the channel goes inactive while occupied, the
    I-flag sets (raw inactivity crosses t1), and on heal the resuming
    flit triggers the I-reset promotion path — under both the simple
    hook (reset every G channel of the router) and the selective waiter
    maps.  The opposing message keeps the other channel's G/P flags in
    play at the same time.
    """
    return VerifyScenario(
        name="ring2-promotion",
        messages=(
            MessageSpec(source=0, dest=1, length=3, earliest=0, latest=0),
            MessageSpec(source=1, dest=0, length=3, earliest=0, latest=1),
        ),
        faults=(_link_down(channel=0, start=2, end=5),),
        fault_class="promotion",
    )


def ring4_cross() -> VerifyScenario:
    """True routing deadlock: opposite pairs on a 4-ring (slow sweep).

    Every source/destination pair is at distance exactly ``k/2 = 2``, so
    fully-adaptive minimal routing allows *both* directions at injection
    and the adversary can steer all four worms clockwise — a cyclic
    hold-wait chain with no faults involved.
    """
    return VerifyScenario(
        name="ring4-cross",
        radix=4,
        messages=tuple(
            MessageSpec(
                source=i, dest=(i + 2) % 4, length=2, earliest=0, latest=0
            )
            for i in range(4)
        ),
    )


def scenarios(slow: bool = False) -> Tuple[VerifyScenario, ...]:
    """The sweep grid; ``slow`` appends the 4-node configurations."""
    grid = [
        ring2_basic(),
        ring2_pair(),
        ring3_basic(),
        line3_basic(),
        ring2_linkdown(),
        ring2_linkdown_transient(),
        ring2_vcstuck(),
        ring2_counterlag(),
        ring2_promotion(),
    ]
    if slow:
        grid.append(ring4_cross())
    return tuple(grid)


def cases_for(scenario: VerifyScenario) -> Tuple[VerifyCase, ...]:
    """Detector cells checked for one scenario.

    The promotion scenario targets the NDM rule sites specifically, so it
    only runs the two NDM variants; every other scenario runs the full
    mechanism grid.
    """
    grid = MECHANISM_GRID
    if scenario.fault_class == "promotion":
        grid = tuple(cell for cell in grid if cell[0] == "ndm")
    return tuple(
        VerifyCase(
            scenario=scenario,
            mechanism=mechanism,
            selective_promotion=selective,
            threshold=3,
            t1=1,
            probe_max_hops=8,
            probe_max_outstanding=4,
        )
        for mechanism, selective in grid
    )


def all_cases(slow: bool = False) -> Tuple[VerifyCase, ...]:
    return tuple(
        case for sc in scenarios(slow) for case in cases_for(sc)
    )


def refutation_selftest_case() -> VerifyCase:
    """A case that *must* refute: the null detector on a permanent wedge.

    Keeps the sweep honest — if the liveness machinery ever stops finding
    this false negative, the proofs elsewhere are vacuous.
    """
    return VerifyCase(scenario=ring2_linkdown(), mechanism="none")


def find_case(label: str, slow: bool = True) -> Optional[VerifyCase]:
    """Look a case up by its :meth:`VerifyCase.label` (CLI replay)."""
    for case in all_cases(slow) + (refutation_selftest_case(),):
        if case.label() == label:
            return case
    return None
