"""Exhaustive state-space verification of small network configurations.

A bounded model checker over the *real* simulator: scripted workloads and
scripted arbitration turn every run into a pure function of its choice
trace, a canonical time-relative encoding quotients away absolute time,
and breadth-first enumeration visits every reachable state of 2-4 node
configurations.  Per state the checker asserts the structural invariants,
audits every G/P transition against the paper's promotion rules, and
checks the 0-false-negative property as a liveness condition on the
finite quotient — refutations ship as minimized, replayable
counterexample files.

See ``docs/verification.md`` for the method and its soundness argument.
"""

from repro.verify.checker import (
    EncodingUnsound,
    OracleContradiction,
    Verdict,
    Violation,
    explore,
)
from repro.verify.counterexample import (
    ReplayMismatch,
    check_counterexample,
    load_counterexample,
    write_counterexample,
)
from repro.verify.driver import Instance, replay
from repro.verify.encode import behavioural_digest, digest, encode_state
from repro.verify.library import all_cases, refutation_selftest_case, scenarios
from repro.verify.scenario import (
    PERMANENT,
    MessageSpec,
    VerifyCase,
    VerifyScenario,
)

__all__ = [
    "EncodingUnsound",
    "Instance",
    "MessageSpec",
    "OracleContradiction",
    "PERMANENT",
    "ReplayMismatch",
    "Verdict",
    "VerifyCase",
    "VerifyScenario",
    "Violation",
    "all_cases",
    "behavioural_digest",
    "check_counterexample",
    "digest",
    "encode_state",
    "explore",
    "load_counterexample",
    "refutation_selftest_case",
    "replay",
    "scenarios",
    "write_counterexample",
]
