"""Command-line entry point: ``repro verify`` / ``python -m repro.verify``.

``repro verify run`` sweeps the scenario grid of
:mod:`repro.verify.library`, exhaustively enumerating every (scenario,
mechanism, promotion, fault-class) cell to fixpoint and reporting the
verdict per cell — ``proved`` with the measured worst-case detection
bound, or ``refuted`` with a minimized, replayable counterexample.
Exits non-zero on any *unexpected* refutation: cells listed in
``EXPECTED_REFUTED`` (the honest counter-mechanism limits on permanent
link-down wedges, plus the null-detector self-test) must refute, and the
sweep equally fails if one of them stops doing so.

``repro verify list`` prints the grid; ``repro verify replay`` re-runs a
stored counterexample JSON against the live simulator and reports
whether it still reproduces.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.verify.checker import Verdict, explore
from repro.verify.counterexample import (
    check_counterexample,
    counterexample_payload,
    load_counterexample,
)
from repro.verify.library import all_cases, refutation_selftest_case
from repro.verify.scenario import VerifyCase

#: Cells whose refutation is the *expected* honest outcome.  The
#: inactivity-counter mechanisms watch channel counters that a dead,
#: unoccupied link never advances, so a permanent link-down wedge is
#: undetectable for them by construction; the probe mechanism marks one
#: *victim* per wait cycle and drops probes at already-marked holders,
#: so without a recovery scheme removing victims the surviving members
#: of a true routing deadlock are never flagged; the null detector never
#: detects anything and keeps the liveness machinery honest.
EXPECTED_REFUTED = frozenset(
    {
        "ring2-linkdown/ndm/simple",
        "ring2-linkdown/ndm/selective",
        "ring2-linkdown/pdm",
        "ring2-linkdown/none",
        "ring4-cross/probe",
    }
)


def sweep(
    slow: bool = False,
    max_states: int = 200_000,
    max_cycles: int = 10_000,
    selftest: bool = True,
) -> List[Verdict]:
    """Run the full grid (plus the refutation self-test) and collect verdicts."""
    cases: List[VerifyCase] = list(all_cases(slow))
    if selftest:
        cases.append(refutation_selftest_case())
    return [
        explore(case, max_states=max_states, max_cycles=max_cycles)
        for case in cases
    ]


def unexpected_outcomes(verdicts: List[Verdict]) -> List[str]:
    """Human-readable list of cells that defied their expected verdict."""
    problems: List[str] = []
    for v in verdicts:
        label = v.case.label()
        if v.verdict == "inconclusive":
            problems.append(f"{label}: inconclusive (stopped on {v.stopped_on})")
        elif v.verdict == "refuted" and label not in EXPECTED_REFUTED:
            kind = v.violation.kind if v.violation else "?"
            problems.append(f"{label}: unexpected refutation ({kind})")
        elif v.verdict == "proved" and label in EXPECTED_REFUTED:
            problems.append(f"{label}: expected a refutation, got a proof")
    return problems


def render_report(verdicts: List[Verdict]) -> str:
    header = (
        f"{'cell':<42} {'fault class':<22} {'verdict':<9} "
        f"{'states':>7} {'edges':>7} {'span':>5}"
    )
    lines = [header, "-" * len(header)]
    for v in verdicts:
        span = str(v.max_undetected_span) if v.proved else "-"
        mark = ""
        if v.verdict == "refuted":
            mark = (
                "  (expected)"
                if v.case.label() in EXPECTED_REFUTED
                else "  (UNEXPECTED)"
            )
            if v.violation is not None:
                mark += f" [{v.violation.kind}]"
        lines.append(
            f"{v.case.label():<42} {v.case.scenario.fault_class:<22} "
            f"{v.verdict:<9} {v.states:>7} {v.edges:>7} {span:>5}{mark}"
        )
    return "\n".join(lines)


def write_verdicts(verdicts: List[Verdict], path: Path) -> None:
    payload: Dict[str, object] = {
        "format": 1,
        "expected_refuted": sorted(EXPECTED_REFUTED),
        "verdicts": [v.to_dict() for v in verdicts],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def run(args: argparse.Namespace) -> int:
    started = time.monotonic()
    verdicts = sweep(
        slow=args.slow,
        max_states=args.max_states,
        max_cycles=args.max_cycles,
        selftest=not args.no_selftest,
    )
    print(render_report(verdicts))
    elapsed = time.monotonic() - started
    total_states = sum(v.states for v in verdicts)
    print(
        f"\n{len(verdicts)} cells, {total_states} states enumerated "
        f"in {elapsed:.1f}s"
    )
    if args.out:
        write_verdicts(verdicts, Path(args.out))
        print(f"verdicts written to {args.out}")
    if args.counterexamples:
        directory = Path(args.counterexamples)
        for v in verdicts:
            if v.violation is None:
                continue
            name = v.case.label().replace("/", "__") + ".json"
            directory.mkdir(parents=True, exist_ok=True)
            (directory / name).write_text(
                json.dumps(
                    counterexample_payload(v), indent=2, sort_keys=True
                )
                + "\n"
            )
        print(f"counterexamples written to {directory}")
    problems = unexpected_outcomes(verdicts)
    if problems:
        print("\nFAIL:")
        for p in problems:
            print(f"  {p}")
        return 1
    print("\nall cells match their expected verdicts")
    return 0


def run_list(args: argparse.Namespace) -> int:
    cases = list(all_cases(args.slow)) + [refutation_selftest_case()]
    for case in cases:
        expected = (
            "refuted" if case.label() in EXPECTED_REFUTED else "proved"
        )
        print(f"{case.label():<42} expected={expected}")
    return 0


def run_replay(args: argparse.Namespace) -> int:
    case, violation = load_counterexample(Path(args.path))
    check_counterexample(case, violation)
    print(
        f"{case.label()}: {violation.kind} violation reproduces "
        f"({len(violation.trace)}-cycle trace"
        + (
            f", {len(violation.loop)}-cycle loop)"
            if violation.loop is not None
            else ")"
        )
    )
    return 0


def build_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Configure the verify options (reused by the ``repro`` umbrella CLI)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro verify",
            description="Exhaustive state-space verifier for small networks.",
        )
    sub = parser.add_subparsers(dest="verify_command", required=True)
    runp = sub.add_parser(
        "run",
        help="enumerate the scenario grid and report proved/refuted per cell",
        description=(
            "Exhaustively enumerate every (scenario, mechanism, promotion, "
            "fault-class) cell to fixpoint; verdicts are proved, refuted "
            "(with a minimized replayable counterexample) or inconclusive."
        ),
    )
    runp.add_argument(
        "--slow",
        action="store_true",
        help="include the 4-node configurations (minutes, not seconds)",
    )
    runp.add_argument(
        "--max-states",
        type=int,
        default=200_000,
        help="state cap per cell before declaring inconclusive "
        "(default: %(default)s)",
    )
    runp.add_argument(
        "--max-cycles",
        type=int,
        default=10_000,
        help="depth cap per cell before declaring inconclusive "
        "(default: %(default)s)",
    )
    runp.add_argument(
        "--no-selftest",
        action="store_true",
        help="skip the null-detector refutation self-test cell",
    )
    runp.add_argument(
        "--out",
        default=None,
        help="write the verdict JSON to this path",
    )
    runp.add_argument(
        "--counterexamples",
        default=None,
        help="write refutation counterexample JSONs into this directory",
    )
    runp.set_defaults(func=run)

    listp = sub.add_parser(
        "list",
        help="print the verification grid and expected verdicts",
    )
    listp.add_argument(
        "--slow",
        action="store_true",
        help="include the 4-node configurations",
    )
    listp.set_defaults(func=run_list)

    replayp = sub.add_parser(
        "replay",
        help="replay a stored counterexample against the live simulator",
        description=(
            "Load a counterexample JSON and re-run its choice trace; "
            "exits non-zero if the violation no longer reproduces."
        ),
    )
    replayp.add_argument("path", help="counterexample JSON file")
    replayp.set_defaults(func=run_replay)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    result = args.func(args)
    return int(result) if result is not None else 0


if __name__ == "__main__":  # pragma: no cover - console-script entry
    raise SystemExit(main())
