"""Incremental campaign manifest: crash-safe progress + telemetry.

The manifest is JSON-lines: one ``campaign`` header per engine start and
one ``cell`` record per finished simulation, flushed as soon as the cell
completes.  Killing a campaign mid-run therefore loses at most the cells
still in flight; re-running with resume enabled replays the manifest and
only schedules cells whose config hash has no finished record.

Each cell record also carries telemetry — wall-clock seconds, the worker
that ran it, and whether it came from a live run, the cache, or a
previous manifest — which :func:`summarize_manifest` turns into the
``repro-experiments campaign summary`` report.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional


class CampaignCheckpoint:
    """Append-only JSONL manifest of completed campaign cells.

    Args:
        path: manifest file location (parent dirs created on demand).
        fresh: truncate any existing manifest instead of extending it
            (a plain re-run rather than a resume).
    """

    def __init__(self, path: str, fresh: bool = False) -> None:
        self.path = Path(path)
        if fresh and self.path.exists():
            self.path.unlink()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def start(self, table_id: int, total: int) -> None:
        """Record that a (new or resumed) table campaign began."""
        self._append(
            {"kind": "campaign", "table_id": table_id, "total": total}
        )

    def record_cell(
        self,
        key: str,
        config_hash: str,
        cell: Dict[str, Any],
        wall_time: float,
        worker: str,
        source: str,
        engine: str = "",
        phase_time: Optional[Dict[str, float]] = None,
    ) -> None:
        """Persist one finished cell (flushed immediately)."""
        record = {
            "kind": "cell",
            "key": key,
            "config_hash": config_hash,
            "cell": cell,
            "wall_time": wall_time,
            "worker": worker,
            "source": source,
        }
        if engine:
            record["engine"] = engine
        if phase_time:
            record["phase_time"] = phase_time
        self._append(record)

    def _append(self, record: Dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """Every parseable manifest record (corrupt tail lines skipped)."""
        if not self.path.exists():
            return []
        records = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue  # a line cut short by a crash
        return records

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Finished cells by config hash (latest record wins).

        Keyed by config hash rather than grid position, so a resumed
        campaign re-runs any cell whose configuration changed (different
        seed, grid, or saturation) instead of serving stale results.
        """
        done: Dict[str, Dict[str, Any]] = {}
        for record in self.records():
            if record.get("kind") == "cell" and "config_hash" in record:
                done[record["config_hash"]] = record
        return done


# ----------------------------------------------------------------------
# Campaign summary report
# ----------------------------------------------------------------------

@dataclass
class CampaignSummary:
    """Aggregated telemetry of one manifest."""

    total_cells: int = 0
    by_source: Counter[str] = field(default_factory=Counter)
    by_worker: Counter[str] = field(default_factory=Counter)
    by_table: Counter[str] = field(default_factory=Counter)
    wall_time_total: float = 0.0
    wall_time_max: float = 0.0
    slowest_key: Optional[str] = None
    campaigns_started: int = 0
    by_engine: Counter[str] = field(default_factory=Counter)
    phase_time_total: Dict[str, float] = field(default_factory=dict)

    @property
    def wall_time_mean(self) -> float:
        return self.wall_time_total / self.total_cells if self.total_cells else 0.0


def summarize_manifest(path: str) -> CampaignSummary:
    """Fold a manifest into a :class:`CampaignSummary`."""
    summary = CampaignSummary()
    for record in CampaignCheckpoint(path).records():
        if record.get("kind") == "campaign":
            summary.campaigns_started += 1
            continue
        if record.get("kind") != "cell":
            continue
        summary.total_cells += 1
        summary.by_source[record.get("source", "run")] += 1
        summary.by_worker[record.get("worker", "?")] += 1
        table = record.get("key", "?").split("/", 1)[0]
        summary.by_table[table] += 1
        wall = float(record.get("wall_time", 0.0))
        summary.wall_time_total += wall
        if wall > summary.wall_time_max:
            summary.wall_time_max = wall
            summary.slowest_key = record.get("key")
        engine = record.get("engine")
        if engine:
            summary.by_engine[engine] += 1
        for phase, seconds in record.get("phase_time", {}).items():
            summary.phase_time_total[phase] = summary.phase_time_total.get(
                phase, 0.0
            ) + float(seconds)
    return summary


def render_summary(summary: CampaignSummary) -> str:
    """Human-readable ``campaign summary`` report."""
    if summary.total_cells == 0:
        return "campaign manifest is empty (no completed cells recorded)"
    lines = [
        f"campaigns started     : {summary.campaigns_started}",
        f"cells completed       : {summary.total_cells}",
        "cells by source       : "
        + ", ".join(
            f"{source}={count}"
            for source, count in sorted(summary.by_source.items())
        ),
        "cells by table        : "
        + ", ".join(
            f"{table}={count}"
            for table, count in sorted(summary.by_table.items())
        ),
        f"simulated wall time   : {summary.wall_time_total:.2f}s total, "
        f"{summary.wall_time_mean:.2f}s/cell mean, "
        f"{summary.wall_time_max:.2f}s max"
        + (f" ({summary.slowest_key})" if summary.slowest_key else ""),
        f"workers               : {len(summary.by_worker)} "
        + "("
        + ", ".join(
            f"{worker}: {count}"
            for worker, count in sorted(summary.by_worker.items())
        )
        + ")",
    ]
    if summary.by_engine:
        lines.append(
            "cells by engine       : "
            + ", ".join(
                f"{engine}={count}"
                for engine, count in sorted(summary.by_engine.items())
            )
        )
    if summary.phase_time_total:
        lines.append(
            "phase wall time       : "
            + ", ".join(
                f"{phase}={seconds:.2f}s"
                for phase, seconds in sorted(summary.phase_time_total.items())
            )
        )
    return "\n".join(lines)
