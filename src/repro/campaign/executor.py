"""Parallel execution of campaign jobs.

``execute_jobs`` resolves every :class:`~repro.campaign.jobs.CellJob`
through three layers, cheapest first:

1. **resume** — a finished record in the campaign manifest
   (:class:`~repro.campaign.checkpoint.CampaignCheckpoint`) with a
   matching config hash;
2. **cache** — the content-addressed on-disk store
   (:class:`~repro.campaign.cache.ResultCache`);
3. **run** — a live simulation, either in-process (``num_workers=1``,
   the deterministic serial fallback used by tests) or fanned out over a
   ``ProcessPoolExecutor``.

Cells run out of order under the pool, but results are keyed, so callers
reassemble tables in canonical order and the output is bit-identical to
the sequential path.  Workers ship lean ``SimulationStats`` dicts back
(:meth:`~repro.metrics.stats.SimulationStats.to_dict` without the event
log) and the parent derives the ``CellResult``, so both paths share one
serialization round-trip.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.checkpoint import CampaignCheckpoint
from repro.campaign.jobs import CellJob, cell_from_dict, cell_to_dict
from repro.experiments.runner import CellResult, cell_from_stats
from repro.metrics.stats import SimulationStats
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator

ProgressFn = Callable[[int, int], None]


@dataclass(frozen=True)
class JobOutcome:
    """One resolved cell: the result plus execution telemetry."""

    job: CellJob
    cell: CellResult
    #: Wall-clock seconds the simulation took (0 when served from disk).
    wall_time: float
    #: ``"serial"``, ``"pid<n>"``, ``"cache"`` or ``"manifest"``.
    worker: str
    #: ``"run"``, ``"cache"`` or ``"resume"``.
    source: str
    #: Simulation engine the cell ran under ("" for pre-engine records).
    engine: str = ""
    #: Wall seconds per simulator phase (empty for pre-engine records).
    phase_time: Dict[str, float] = field(default_factory=dict)


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one cell from its plain-dict payload.

    Top-level (picklable) and dict-in/dict-out so the same function
    backs the serial fallback and the process pool.
    """
    start = time.perf_counter()
    config = SimulationConfig.from_dict(payload["config"])
    stats = Simulator(config).run()
    return {
        "key": payload["key"],
        "stats": stats.to_dict(include_events=False),
        "wall_time": time.perf_counter() - start,
        "worker": f"pid{os.getpid()}",
    }


def default_num_workers() -> int:
    """Default fan-out: one worker per CPU."""
    return os.cpu_count() or 1


def execute_jobs(
    jobs: Sequence[CellJob],
    num_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    checkpoint: Optional[CampaignCheckpoint] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
) -> Dict[str, JobOutcome]:
    """Resolve every job to a :class:`JobOutcome`, keyed by job key.

    Args:
        jobs: the campaign's cells (any iteration order).
        num_workers: process-pool width; ``None`` means one per CPU,
            ``1`` runs serially in-process.
        cache: optional on-disk result store consulted before running.
        checkpoint: optional manifest; every newly resolved cell is
            recorded immediately (crash-safe).
        resume: consult the manifest's finished records before
            scheduling work (requires ``checkpoint``).
        progress: optional ``progress(done, total)`` callback.
    """
    if num_workers is None:
        num_workers = default_num_workers()
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    total = len(jobs)
    done = 0
    outcomes: Dict[str, JobOutcome] = {}
    completed = checkpoint.completed() if (resume and checkpoint) else {}

    def tick() -> None:
        if progress is not None:
            progress(done, total)

    def finish(outcome: JobOutcome, record: bool = True) -> None:
        nonlocal done
        outcomes[outcome.job.key] = outcome
        if outcome.source == "run" and cache is not None:
            cache.put(
                outcome.job.config_hash,
                {
                    "key": outcome.job.key,
                    "cell": cell_to_dict(outcome.cell),
                    "wall_time": outcome.wall_time,
                    "worker": outcome.worker,
                    "engine": outcome.engine,
                    "phase_time": outcome.phase_time,
                },
            )
        if record and checkpoint is not None:
            checkpoint.record_cell(
                key=outcome.job.key,
                config_hash=outcome.job.config_hash,
                cell=cell_to_dict(outcome.cell),
                wall_time=outcome.wall_time,
                worker=outcome.worker,
                source=outcome.source,
                engine=outcome.engine,
                phase_time=outcome.phase_time,
            )
        done += 1
        tick()

    # Layer 1 + 2: serve what the manifest and the cache already know.
    pending: List[CellJob] = []
    for job in jobs:
        record = completed.get(job.config_hash)
        if record is not None:
            finish(
                JobOutcome(
                    job=job,
                    cell=cell_from_dict(record["cell"]),
                    wall_time=float(record.get("wall_time", 0.0)),
                    worker="manifest",
                    source="resume",
                    engine=record.get("engine", ""),
                    phase_time=record.get("phase_time", {}),
                ),
                # Already in the manifest; re-recording would double-count.
                record=False,
            )
            continue
        payload = cache.get(job.config_hash) if cache is not None else None
        if payload is not None:
            finish(
                JobOutcome(
                    job=job,
                    cell=cell_from_dict(payload["cell"]),
                    wall_time=float(payload.get("wall_time", 0.0)),
                    worker="cache",
                    source="cache",
                    engine=payload.get("engine", ""),
                    phase_time=payload.get("phase_time", {}),
                )
            )
            continue
        pending.append(job)

    # Layer 3: simulate the rest.
    if num_workers == 1:
        for job in pending:
            result = _execute_payload(job.payload())
            finish(_outcome_from_result(job, result, worker="serial"))
    elif pending:
        _run_pool(pending, num_workers, finish)
    return outcomes


def _outcome_from_result(
    job: CellJob, result: Dict[str, Any], worker: Optional[str] = None
) -> JobOutcome:
    """Rebuild stats shipped by a worker and derive the cell result."""
    stats = SimulationStats.from_dict(result["stats"])
    return JobOutcome(
        job=job,
        cell=cell_from_stats(stats, job.rate),
        wall_time=result["wall_time"],
        worker=worker if worker is not None else result["worker"],
        source="run",
        engine=stats.engine,
        phase_time=dict(stats.phase_time),
    )


def _run_pool(
    pending: Sequence[CellJob],
    num_workers: int,
    finish: Callable[[JobOutcome], None],
) -> None:
    """Fan pending jobs out over a process pool, finishing out-of-order."""
    width = min(num_workers, len(pending))
    executor = ProcessPoolExecutor(max_workers=width)
    try:
        futures = {
            executor.submit(_execute_payload, job.payload()): job
            for job in pending
        }
        not_done = set(futures)
        while not_done:
            finished, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for future in finished:
                finish(_outcome_from_result(futures[future], future.result()))
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
