"""Parallel execution of campaign jobs.

``execute_jobs`` resolves every :class:`~repro.campaign.jobs.CellJob`
through three layers, cheapest first:

1. **resume** — a finished record in the campaign manifest
   (:class:`~repro.campaign.checkpoint.CampaignCheckpoint`) with a
   matching config hash;
2. **cache** — the content-addressed on-disk store
   (:class:`~repro.campaign.cache.ResultCache`);
3. **run** — a live simulation, either in-process (``num_workers=1``,
   the deterministic serial fallback used by tests) or fanned out over a
   ``ProcessPoolExecutor``.  Cache-miss cells whose configs ask for
   ``engine="batch"`` and are equal modulo their detector cell —
   mechanism, threshold, probe caps — are grouped into one
   shared-trajectory run each (see ``repro.network.batch``) — the
   results stay bit-identical to per-cell runs while the grid costs one
   simulation per group.  Grouping is a pure optimization: fold results
   do not depend on the partition, so ``--resume`` re-grouping after a
   partial run reproduces the same per-cell records byte for byte.

Cells run out of order under the pool, but results are keyed, so callers
reassemble tables in canonical order and the output is bit-identical to
the sequential path.  Workers ship lean ``SimulationStats`` dicts back
(:meth:`~repro.metrics.stats.SimulationStats.to_dict` without the event
log) and the parent derives the ``CellResult``, so both paths share one
serialization round-trip.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.campaign.cache import ResultCache
from repro.campaign.checkpoint import CampaignCheckpoint
from repro.campaign.jobs import CellJob, cell_from_dict, cell_to_dict
from repro.experiments.runner import CellResult, cell_from_stats
from repro.metrics.stats import SimulationStats
from repro.network import batch as batch_backend
from repro.network.config import DetectorConfig, SimulationConfig
from repro.network.simulator import Simulator

ProgressFn = Callable[[int, int], None]


@dataclass(frozen=True)
class JobOutcome:
    """One resolved cell: the result plus execution telemetry."""

    job: CellJob
    cell: CellResult
    #: Wall-clock seconds the simulation took (0 when served from disk).
    wall_time: float
    #: ``"serial"``, ``"pid<n>"``, ``"cache"`` or ``"manifest"``.
    worker: str
    #: ``"run"``, ``"cache"`` or ``"resume"``.
    source: str
    #: Simulation engine the cell ran under ("" for pre-engine records).
    engine: str = ""
    #: Wall seconds per simulator phase (empty for pre-engine records).
    phase_time: Dict[str, float] = field(default_factory=dict)


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one cell from its plain-dict payload.

    Top-level (picklable) and dict-in/dict-out so the same function
    backs the serial fallback and the process pool.
    """
    start = time.perf_counter()
    config = SimulationConfig.from_dict(payload["config"])
    stats = Simulator(config).run()
    return {
        "key": payload["key"],
        "stats": stats.to_dict(include_events=False),
        "wall_time": time.perf_counter() - start,
        "worker": f"pid{os.getpid()}",
    }


def _execute_batch_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point for one batch group (many cells, one run).

    The cells — mixed mechanisms and thresholds — share a single
    trajectory (see ``repro.network.batch``); the returned stats list
    aligns with ``payload["keys"]``.  Legacy payloads carrying only
    ``thresholds`` (pre-mixed-group checkpoints) are still accepted.
    """
    start = time.perf_counter()
    config = SimulationConfig.from_dict(payload["config"])
    if "detectors" in payload:
        cells = [
            DetectorConfig(**cell) for cell in payload["detectors"]
        ]
        stats_list = batch_backend.run_batch_cells(config, cells)
    else:
        stats_list = batch_backend.run_batch(config, payload["thresholds"])
    return {
        "keys": payload["keys"],
        "stats": [s.to_dict(include_events=False) for s in stats_list],
        "wall_time": time.perf_counter() - start,
        "worker": f"pid{os.getpid()}",
    }


def _batch_payload(jobs: Sequence[CellJob]) -> Dict[str, Any]:
    """Pickle-light dict form of one batch group."""
    return {
        "keys": [job.key for job in jobs],
        # Full per-cell detector configs: groups fold across mechanisms
        # and probe caps, not just thresholds.
        "detectors": [asdict(job.config.detector) for job in jobs],
        # Any member's config works: the group is equal modulo its
        # detector cell (batch_group_key masks exactly those fields).
        "config": jobs[0].config.to_dict(),
    }


def _plan_batch_jobs(
    pending: Sequence[CellJob],
) -> Tuple[List[List[CellJob]], List[CellJob]]:
    """Split cache-miss jobs into shareable batch groups and singles."""
    groups, singles = batch_backend.plan_batches(
        [job.config for job in pending]
    )
    return (
        [[pending[i] for i in group] for group in groups],
        [pending[i] for i in singles],
    )


def default_num_workers() -> int:
    """Default fan-out: one worker per CPU."""
    return os.cpu_count() or 1


def execute_jobs(
    jobs: Sequence[CellJob],
    num_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    checkpoint: Optional[CampaignCheckpoint] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
) -> Dict[str, JobOutcome]:
    """Resolve every job to a :class:`JobOutcome`, keyed by job key.

    Args:
        jobs: the campaign's cells (any iteration order).
        num_workers: process-pool width; ``None`` means one per CPU,
            ``1`` runs serially in-process.
        cache: optional on-disk result store consulted before running.
        checkpoint: optional manifest; every newly resolved cell is
            recorded immediately (crash-safe).
        resume: consult the manifest's finished records before
            scheduling work (requires ``checkpoint``).
        progress: optional ``progress(done, total)`` callback.
    """
    if num_workers is None:
        num_workers = default_num_workers()
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    total = len(jobs)
    done = 0
    outcomes: Dict[str, JobOutcome] = {}
    completed = checkpoint.completed() if (resume and checkpoint) else {}

    def tick() -> None:
        if progress is not None:
            progress(done, total)

    def finish(outcome: JobOutcome, record: bool = True) -> None:
        nonlocal done
        outcomes[outcome.job.key] = outcome
        if outcome.source == "run" and cache is not None:
            cache.put(
                outcome.job.config_hash,
                {
                    "key": outcome.job.key,
                    "cell": cell_to_dict(outcome.cell),
                    "wall_time": outcome.wall_time,
                    "worker": outcome.worker,
                    "engine": outcome.engine,
                    "phase_time": outcome.phase_time,
                },
            )
        if record and checkpoint is not None:
            checkpoint.record_cell(
                key=outcome.job.key,
                config_hash=outcome.job.config_hash,
                cell=cell_to_dict(outcome.cell),
                wall_time=outcome.wall_time,
                worker=outcome.worker,
                source=outcome.source,
                engine=outcome.engine,
                phase_time=outcome.phase_time,
            )
        done += 1
        tick()

    # Layer 1 + 2: serve what the manifest and the cache already know.
    # Stored entries are validated, not trusted: a torn or wrong-shape
    # record (killed writer, hand-edited file) downgrades to the next
    # layer with a warning instead of poisoning the whole campaign.
    pending: List[CellJob] = []
    for job in jobs:
        record = completed.get(job.config_hash)
        if record is not None:
            outcome = _outcome_from_stored(
                job, record, worker="manifest", source="resume"
            )
            if outcome is not None:
                # Already in the manifest; re-recording would double-count.
                finish(outcome, record=False)
                continue
        payload = cache.get(job.config_hash) if cache is not None else None
        if payload is not None:
            outcome = _outcome_from_stored(
                job, payload, worker="cache", source="cache"
            )
            if outcome is not None:
                finish(outcome)
                continue
        pending.append(job)

    # Layer 3: simulate the rest.  Eligible "batch"-engine cells that
    # differ only in detection threshold share one trajectory per group
    # (see repro.network.batch); everything else runs per cell.
    groups, singles = _plan_batch_jobs(pending)
    if num_workers == 1:
        for job in singles:
            result = _execute_payload(job.payload())
            finish(_outcome_from_result(job, result, worker="serial"))
        for group in groups:
            result = _execute_batch_payload(_batch_payload(group))
            for outcome in _outcomes_from_batch(group, result, worker="serial"):
                finish(outcome)
    elif pending:
        _run_pool(singles, groups, num_workers, finish)
    return outcomes


def _outcome_from_stored(
    job: CellJob, payload: Dict[str, Any], worker: str, source: str
) -> Optional[JobOutcome]:
    """Rebuild a stored (manifest/cache) entry, or ``None`` if malformed."""
    try:
        cell = cell_from_dict(payload["cell"])
        wall_time = float(payload.get("wall_time", 0.0))
        engine = str(payload.get("engine", ""))
        phase_time = dict(payload.get("phase_time", {}))
    except (KeyError, TypeError, ValueError) as exc:
        warnings.warn(
            f"ignoring malformed {source} entry for {job.key} "
            f"({type(exc).__name__}: {exc}); the cell will be re-resolved",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return JobOutcome(
        job=job,
        cell=cell,
        wall_time=wall_time,
        worker=worker,
        source=source,
        engine=engine,
        phase_time=phase_time,
    )


def _outcome_from_result(
    job: CellJob, result: Dict[str, Any], worker: Optional[str] = None
) -> JobOutcome:
    """Rebuild stats shipped by a worker and derive the cell result."""
    stats = SimulationStats.from_dict(result["stats"])
    return JobOutcome(
        job=job,
        cell=cell_from_stats(stats, job.rate),
        wall_time=result["wall_time"],
        worker=worker if worker is not None else result["worker"],
        source="run",
        engine=stats.engine,
        phase_time=dict(stats.phase_time),
    )


def _outcomes_from_batch(
    jobs: Sequence[CellJob],
    result: Dict[str, Any],
    worker: Optional[str] = None,
) -> Iterator[JobOutcome]:
    """Split one batch-group result into per-cell outcomes.

    The group's wall time is attributed evenly across its cells — the
    shared trajectory is one indivisible advance, and an even split
    keeps campaign-level wall-time sums meaningful.
    """
    per_cell = result["wall_time"] / max(len(jobs), 1)
    who = worker if worker is not None else result["worker"]
    for job, stats_dict in zip(jobs, result["stats"]):
        stats = SimulationStats.from_dict(stats_dict)
        yield JobOutcome(
            job=job,
            cell=cell_from_stats(stats, job.rate),
            wall_time=per_cell,
            worker=who,
            source="run",
            engine=stats.engine,
            phase_time=dict(stats.phase_time),
        )


def _run_pool(
    singles: Sequence[CellJob],
    groups: Sequence[Sequence[CellJob]],
    num_workers: int,
    finish: Callable[[JobOutcome], None],
) -> None:
    """Fan pending work out over a process pool, finishing out-of-order.

    Batch groups are single pool tasks (one shared run each); their
    per-cell outcomes are finished together when the group completes.
    """
    width = min(num_workers, len(singles) + len(groups))
    executor = ProcessPoolExecutor(max_workers=width)
    try:
        futures: Dict[Any, Optional[CellJob]] = {
            executor.submit(_execute_payload, job.payload()): job
            for job in singles
        }
        group_futures: Dict[Any, Sequence[CellJob]] = {
            executor.submit(_execute_batch_payload, _batch_payload(group)): group
            for group in groups
        }
        futures.update({future: None for future in group_futures})
        not_done = set(futures)
        while not_done:
            finished, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for future in finished:
                job = futures[future]
                if job is not None:
                    finish(_outcome_from_result(job, future.result()))
                else:
                    group = group_futures[future]
                    for outcome in _outcomes_from_batch(group, future.result()):
                        finish(outcome)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
