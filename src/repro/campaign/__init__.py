"""Experiment-campaign engine: parallel, cached, resumable table runs.

The campaign package turns the embarrassingly parallel work of
regenerating the paper's tables into scheduled *jobs*:

* :mod:`repro.campaign.jobs` — grid enumeration, per-cell seed
  derivation and content hashing of resolved configs;
* :mod:`repro.campaign.executor` — serial or process-pool execution
  with per-cell telemetry;
* :mod:`repro.campaign.cache` — content-addressed on-disk result store;
* :mod:`repro.campaign.checkpoint` — incremental manifest for resume
  and the ``campaign summary`` report;
* :mod:`repro.campaign.engine` — table-level orchestration
  (``run_table_campaign`` / ``run_campaign``).
"""

from repro.campaign.cache import ResultCache, default_cache_dir
from repro.campaign.checkpoint import (
    CampaignCheckpoint,
    CampaignSummary,
    render_summary,
    summarize_manifest,
)
from repro.campaign.engine import (
    assemble_table,
    run_campaign,
    run_table_campaign,
)
from repro.campaign.executor import (
    JobOutcome,
    default_num_workers,
    execute_jobs,
)
from repro.campaign.jobs import (
    CellJob,
    cell_from_dict,
    cell_to_dict,
    config_hash,
    derive_cell_seed,
    enumerate_table_jobs,
    job_key,
)

__all__ = [
    "CampaignCheckpoint",
    "CampaignSummary",
    "CellJob",
    "JobOutcome",
    "ResultCache",
    "assemble_table",
    "cell_from_dict",
    "cell_to_dict",
    "config_hash",
    "default_cache_dir",
    "default_num_workers",
    "derive_cell_seed",
    "enumerate_table_jobs",
    "execute_jobs",
    "job_key",
    "render_summary",
    "run_campaign",
    "run_table_campaign",
    "summarize_manifest",
]
