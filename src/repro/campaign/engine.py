"""High-level campaign engine: tables in, tables out.

``run_table_campaign`` is the parallel/cached/resumable drop-in for the
sequential ``run_table``: it enumerates the spec into jobs, resolves
them through the executor, and reassembles the ``TableResult`` in
canonical cell order — so the rendered table (and its JSON dump) is
byte-identical to a sequential run of the same spec and seed.

``run_campaign`` strings several tables into one campaign sharing a
cache and a manifest, which is what ``repro-experiments all`` uses.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.checkpoint import CampaignCheckpoint
from repro.campaign.executor import JobOutcome, ProgressFn, execute_jobs
from repro.campaign.jobs import enumerate_table_jobs, job_key
from repro.experiments.runner import TableResult, saturation_rate
from repro.experiments.spec import TableSpec
from repro.network.config import SimulationConfig


def run_table_campaign(
    spec: TableSpec,
    base: SimulationConfig,
    saturation: Optional[float] = None,
    num_workers: int = 1,
    cache: Optional[ResultCache] = None,
    checkpoint: Optional[CampaignCheckpoint] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    seed_policy: str = "shared",
) -> TableResult:
    """Run one table as a campaign and reassemble its result grid.

    With the defaults (serial, no cache, no checkpoint, shared seed)
    this computes exactly what the sequential runner computes, cell for
    cell; every keyword argument turns on one orthogonal engine feature.
    """
    if saturation is None:
        saturation = saturation_rate(base, spec)
    rates, jobs = enumerate_table_jobs(
        spec, base, saturation, seed_policy=seed_policy
    )
    if checkpoint is not None:
        checkpoint.start(spec.table_id, total=len(jobs))
    outcomes = execute_jobs(
        jobs,
        num_workers=num_workers,
        cache=cache,
        checkpoint=checkpoint,
        resume=resume,
        progress=progress,
    )
    return assemble_table(spec, rates, outcomes)


def assemble_table(
    spec: TableSpec,
    rates: Sequence[float],
    outcomes: Dict[str, JobOutcome],
) -> TableResult:
    """Rebuild a ``TableResult`` from keyed outcomes, canonical order.

    Iterates ``spec.cell_coords()`` — the same order the sequential
    runner fills cells in — so dict insertion order, rendering and JSON
    dumps match the sequential path exactly.
    """
    result = TableResult(spec=spec, rates=tuple(rates))
    for threshold, load_index, size in spec.cell_coords():
        key = job_key(spec.table_id, threshold, load_index, size)
        row = result.cells.setdefault(threshold, {})
        row[(load_index, size)] = outcomes[key].cell
    return result


def run_campaign(
    specs: Iterable[TableSpec],
    base: SimulationConfig,
    saturations: Optional[Dict[str, float]] = None,
    num_workers: int = 1,
    cache: Optional[ResultCache] = None,
    checkpoint: Optional[CampaignCheckpoint] = None,
    resume: bool = False,
    progress_factory: Optional[
        Callable[[TableSpec], Optional[ProgressFn]]
    ] = None,
) -> Dict[int, TableResult]:
    """Run several tables as one campaign with shared cache/manifest.

    Args:
        specs: the table specs to run, in order.
        base: base simulation config shared by every table.
        saturations: optional pattern -> saturation-rate overrides.
        progress_factory: optional ``factory(spec) -> progress`` hook so
            callers can label per-table progress lines.
    """
    results: Dict[int, TableResult] = {}
    for spec in specs:
        saturation = None
        if saturations and spec.pattern in saturations:
            saturation = saturations[spec.pattern]
        progress = progress_factory(spec) if progress_factory else None
        results[spec.table_id] = run_table_campaign(
            spec,
            base,
            saturation=saturation,
            num_workers=num_workers,
            cache=cache,
            checkpoint=checkpoint,
            resume=resume,
            progress=progress,
        )
    return results
