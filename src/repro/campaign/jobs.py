"""Job enumeration for experiment campaigns.

A *campaign* is a bag of independent simulations.  Each one is described
by a self-contained :class:`CellJob`: the fully resolved
:class:`~repro.network.config.SimulationConfig`, the table coordinates it
fills, and a stable content hash of the config that keys the on-disk
result cache and the resume manifest.  Because the hash covers every
field that influences the simulation (topology, workload, detector,
seed, windows), two jobs with equal hashes are guaranteed to produce the
same :class:`~repro.experiments.runner.CellResult` — which is what makes
caching and resumption safe.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.experiments.runner import CellResult, build_cell_config
from repro.experiments.spec import TableSpec
from repro.network.config import SimulationConfig

#: Per-cell seed derivation policies (see :func:`enumerate_table_jobs`).
SEED_POLICIES = ("shared", "per-cell")


def canonical_config_json(config: SimulationConfig) -> str:
    """Canonical JSON text of a config (sorted keys, no whitespace)."""
    return json.dumps(
        config.to_dict(), sort_keys=True, separators=(",", ":")
    )


def config_hash(config: SimulationConfig) -> str:
    """Stable content hash of a fully resolved simulation config.

    Equal hashes imply bit-identical simulations (configs determine runs
    completely, including the seed), so the hash doubles as the result
    cache key.
    """
    text = canonical_config_json(config)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def derive_cell_seed(
    base_seed: int, table_id: int, threshold: int, load_index: int, size: str
) -> int:
    """Deterministic per-cell seed, decorrelated across the grid.

    Uses SHA-256 over the cell coordinates (not :func:`hash`, which is
    process-randomized), so the same cell always gets the same seed on
    any machine or worker process.
    """
    material = f"{base_seed}|{table_id}|{threshold}|{load_index}|{size}"
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def job_key(table_id: int, threshold: int, load_index: int, size: str) -> str:
    """Human-readable stable identity of one cell inside a campaign."""
    return f"table{table_id}/th{threshold}/load{load_index}/{size}"


@dataclass(frozen=True)
class CellJob:
    """One self-describing unit of campaign work (one simulation)."""

    #: Stable identity inside the campaign (table + grid coordinates).
    key: str
    table_id: int
    threshold: int
    load_index: int
    size: str
    #: Offered injection rate in flits/cycle/node.
    rate: float
    #: Fully resolved simulation config for this cell.
    config: SimulationConfig
    #: Content hash of ``config`` (cache / manifest key).
    config_hash: str

    def payload(self) -> Dict[str, Any]:
        """Pickle-light dict form shipped to worker processes."""
        return {
            "key": self.key,
            "rate": self.rate,
            "config": self.config.to_dict(),
        }


def enumerate_table_jobs(
    spec: TableSpec,
    base: SimulationConfig,
    saturation: float,
    seed_policy: str = "shared",
) -> Tuple[Tuple[float, ...], List[CellJob]]:
    """Expand one table spec into its (rates, jobs) in canonical order.

    Args:
        spec: the table's grid definition.
        base: base simulation config (topology, windows, seed).
        saturation: saturation rate (flits/cycle/node) scaling the loads.
        seed_policy: ``"shared"`` runs every cell on ``base.seed`` —
            bit-identical to the sequential runner; ``"per-cell"``
            derives a decorrelated seed per cell via
            :func:`derive_cell_seed` (useful for variance studies).
    """
    if seed_policy not in SEED_POLICIES:
        raise ValueError(
            f"unknown seed policy {seed_policy!r}; choose one of {SEED_POLICIES}"
        )
    rates = tuple(round(f * saturation, 4) for f in spec.load_fractions)
    jobs: List[CellJob] = []
    for threshold, load_index, size in spec.cell_coords():
        rate = rates[load_index]
        config = build_cell_config(base, spec, threshold, size, rate)
        if seed_policy == "per-cell":
            config.seed = derive_cell_seed(
                base.seed, spec.table_id, threshold, load_index, size
            )
        jobs.append(
            CellJob(
                key=job_key(spec.table_id, threshold, load_index, size),
                table_id=spec.table_id,
                threshold=threshold,
                load_index=load_index,
                size=size,
                rate=rate,
                config=config,
                config_hash=config_hash(config),
            )
        )
    return rates, jobs


# ----------------------------------------------------------------------
# CellResult serialization (cache / manifest payloads)
# ----------------------------------------------------------------------

def cell_to_dict(cell: CellResult) -> Dict[str, Any]:
    """JSON-serializable form of one cell result."""
    return dataclasses.asdict(cell)


def cell_from_dict(payload: Dict[str, Any]) -> CellResult:
    """Inverse of :func:`cell_to_dict`.

    JSON round-trips Python floats exactly, so a reloaded cell compares
    equal to the original — cached tables render byte-identically.
    """
    return CellResult(**payload)
