"""On-disk result cache keyed by simulation-config content hash.

Layout: one JSON file per result, sharded by the first two hex digits of
the hash (``<root>/ab/abcdef....json``) so large sweeps do not pile tens
of thousands of files into one directory.  Writes are atomic
(write-to-temp then ``os.replace``), so a cache shared by concurrent
campaigns never exposes half-written entries; corrupt or truncated files
are treated as misses and overwritten.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, Optional


def default_cache_dir() -> str:
    """Cache location used by the CLI: ``$REPRO_CACHE_DIR`` or a local dir."""
    return os.environ.get("REPRO_CACHE_DIR", ".repro-campaign")


class ResultCache:
    """Content-addressed store of finished cell results.

    Args:
        root: cache directory (created lazily on first write).
    """

    def __init__(self, root: str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        if len(key) < 3:
            raise ValueError(f"cache key too short: {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on a miss.

        A missing file is a plain miss; an *existing* but unreadable or
        torn entry (killed writer predating the atomic-replace scheme,
        disk corruption) is also a miss, with a warning so a recurring
        one is noticed — it will be overwritten by the re-run's ``put``.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            warnings.warn(
                f"cache entry {path} is corrupt (torn or truncated JSON); "
                "treating it as a miss",
                RuntimeWarning,
                stacklevel=2,
            )
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            warnings.warn(
                f"cache entry {path} holds {type(payload).__name__}, not an "
                "object; treating it as a miss",
                RuntimeWarning,
                stacklevel=2,
            )
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Atomically store ``payload`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> Iterator[str]:
        """All stored hashes (walks the shard directories)."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def size(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every cached result; returns the number removed."""
        removed = 0
        for key in list(self.keys()):
            self.path_for(key).unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
