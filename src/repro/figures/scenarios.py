"""Scripted reconstructions of the paper's Figures 2-5.

The four figures tell one continuous story on a 2x2 sub-torus of channels
(here placed at nodes a=(3,0), b=(4,0), c=(4,1), d=(3,1) of an 8x8 torus,
one virtual channel per physical channel so the figures' single-lane
channels are modelled exactly):

* **Figure 2** — messages B, C and D form a chain of blocked messages
  behind an advancing message A: no deadlock, and the NDM must detect
  nothing (the PDM falsely detects C and D).
* **Figure 3** — A drains away and a new message E takes its channel,
  then blocks on D's channel, closing a true deadlock {B, C, D, E}.
  Only B (which saw the root A advance) is eligible: the NDM detects
  exactly B.
* **Figure 4** — recovering B removes the deadlock; everything delivers.
* **Figure 5** — a newcomer F grabs the channel B freed, re-closing the
  cycle as {C, D, E, F}.  F's first flit on that channel re-labels the
  root (I-flag reset -> G/P promotion), so the NDM detects exactly C.

Every hop of every worm is consistent with true fully adaptive minimal
routing, so the scenario messages travel, block and unblock through the
ordinary simulator machinery; only initial worm placement (and, for E/F,
channel hand-off timing) is scripted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.channel import VirtualChannel
from repro.network.config import SimulationConfig
from repro.network.message import Message
from repro.network.simulator import Simulator
from repro.network.topology import Direction
from repro.network.types import MessageStatus, PortKind

#: The four corner nodes of the scenario's channel cycle (8x8 torus coords).
A_NODE = (3, 0)
B_NODE = (4, 0)
C_NODE = (4, 1)
D_NODE = (3, 1)


def scenario_config(
    mechanism: str = "ndm",
    threshold: int = 16,
    recovery: str = "none",
    selective_promotion: bool = False,
) -> SimulationConfig:
    """Simulation config matching the paper's figure drawings.

    One virtual channel per physical channel (single-lane channels as
    drawn), no background traffic, no injection limitation.
    """
    config = SimulationConfig(
        radix=8,
        dimensions=2,
        vcs_per_channel=1,
        buffer_depth=4,
        injection_ports=1,
        ejection_ports=1,
        injection_limit_fraction=None,
        recovery=recovery,
        warmup_cycles=0,
        measure_cycles=10_000,
        ground_truth_interval=0,
        seed=99,
    )
    config.traffic.injection_rate = 0.0
    config.detector.mechanism = mechanism
    config.detector.threshold = threshold
    config.detector.selective_promotion = selective_promotion
    return config


@dataclass
class Scenario:
    """One running figure scenario: the simulator plus named messages."""

    sim: Simulator
    messages: Dict[str, Message] = field(default_factory=dict)

    def name_of(self, message_id: int) -> Optional[str]:
        for name, m in self.messages.items():
            if m.id == message_id:
                return name
        return None

    def detected_names(self) -> List[str]:
        """Names of scenario messages detected so far, in event order."""
        names = []
        for event in self.sim.stats.detection_events:
            name = self.name_of(event.message_id)
            if name is not None:
                names.append(name)
        return names

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.sim.step()

    def run_until(self, predicate, limit: int = 2000) -> bool:
        """Step until ``predicate(scenario)`` holds; False on timeout."""
        for _ in range(limit):
            if predicate(self):
                return True
            self.sim.step()
        return predicate(self)


# ----------------------------------------------------------------------
# Worm placement
# ----------------------------------------------------------------------
def place_worm(
    sim: Simulator,
    source: Sequence[int],
    path: Sequence[Direction],
    dest: Sequence[int],
    length: int,
    parked: bool = False,
) -> Message:
    """Materialize a worm that entered at ``source`` and followed ``path``.

    The worm occupies the source's injection channel plus one network
    channel per path hop; its header sits buffered at the router at the end
    of the path.  Buffers are filled from the header backwards, leftover
    flits wait at the source.  The message is handed to the ordinary
    simulator machinery (it will attempt routing next cycle).

    With ``parked=True`` the worm never routes: it holds its channels in
    silence indefinitely (a controllable stand-in for a worm stalled by
    causes outside the scenario).
    """
    topo = sim.topology
    cycle = sim.cycle
    src_node = topo.node_at(source)
    dest_node = topo.node_at(dest)
    m = Message(sim._next_message_id, src_node, dest_node, length, cycle)
    sim._next_message_id += 1

    spans: List[VirtualChannel] = []
    inj_vc = sim.routers[src_node].free_injection_vc()
    if inj_vc is None:
        raise RuntimeError(f"no free injection VC at node {source}")
    inj_vc.allocate(m, cycle)
    spans.append(inj_vc)

    node = src_node
    for direction in path:
        router = sim.routers[node]
        pc = router.output_pcs.get(direction)
        if pc is None:
            raise ValueError(f"node {node} has no channel in direction {direction}")
        vc = next((v for v in pc.vcs if v.occupant is None), None)
        if vc is None:
            raise RuntimeError(f"{pc} fully occupied; scenario placement invalid")
        vc.allocate(m, cycle)
        router.note_network_vc_allocated()
        spans.append(vc)
        node = pc.dst_node

    # Fill buffers from the header backwards.
    remaining = length
    for vc in reversed(spans):
        take = min(remaining, vc.capacity)
        vc.flits = take
        remaining -= take
    m.flits_at_source = remaining
    m.spans = spans
    m.status = MessageStatus.IN_NETWORK
    m.inject_cycle = cycle
    m.last_source_flit_cycle = cycle  # placement counts as last activity
    m.ever_injected = True
    m.counted = True
    m.in_active = True
    sim.stats.injected += 1
    if sim.measuring:
        sim.stats.injected_measured += 1
    sim.active_messages.append(m)
    if not parked:
        sim.pending_route.append(m)
    return m


def place_entering(
    sim: Simulator,
    source: Sequence[int],
    dest: Sequence[int],
    length: int,
    first_vc: VirtualChannel,
) -> Message:
    """Materialize a worm at ``source`` with its first hop pre-granted.

    Models the paper's "a newly arrived message acquires the channel":
    the message holds an injection VC and has ``first_vc`` allocated, so
    its header crosses that channel in the next movement phase — before
    any blocked rival can re-route into it.
    """
    if first_vc.occupant is not None:
        raise RuntimeError(f"{first_vc} is not free")
    topo = sim.topology
    cycle = sim.cycle
    src_node = topo.node_at(source)
    m = Message(sim._next_message_id, src_node, topo.node_at(dest), length, cycle)
    sim._next_message_id += 1

    inj_vc = sim.routers[src_node].free_injection_vc()
    if inj_vc is None:
        raise RuntimeError(f"no free injection VC at node {source}")
    inj_vc.allocate(m, cycle)
    inj_vc.flits = min(length, inj_vc.capacity)
    m.flits_at_source = length - inj_vc.flits
    m.spans = [inj_vc]

    first_vc.allocate(m, cycle)
    if first_vc.pc.kind is PortKind.NETWORK:
        sim.routers[first_vc.pc.src_node].note_network_vc_allocated()
    m.allocated_vc = first_vc

    m.status = MessageStatus.IN_NETWORK
    m.inject_cycle = cycle
    m.ever_injected = True
    m.counted = True
    m.in_active = True
    sim.stats.injected += 1
    if sim.measuring:
        sim.stats.injected_measured += 1
    sim.active_messages.append(m)
    return m


# ----------------------------------------------------------------------
# Channel lookup helpers
# ----------------------------------------------------------------------
def channel_between(
    sim: Simulator, src: Sequence[int], dst: Sequence[int]
) -> VirtualChannel:
    """The (single) virtual channel of the physical channel src -> dst."""
    topo = sim.topology
    src_node = topo.node_at(src)
    dst_node = topo.node_at(dst)
    for direction, pc in sim.routers[src_node].output_pcs.items():
        if pc.dst_node == dst_node:
            return pc.vcs[0]
    raise ValueError(f"no channel from {src} to {dst}")


# ----------------------------------------------------------------------
# Figure builders
# ----------------------------------------------------------------------
def build_figure2(
    mechanism: str = "ndm",
    threshold: int = 16,
    recovery: str = "none",
    a_length: int = 36,
    selective_promotion: bool = False,
) -> Scenario:
    """Figure 2: B, C, D blocked behind the advancing message A.

    Chain after setup:  D -> waits on C's channel (c->d)
                        C -> waits on B's channel (d->a)
                        B -> waits on A's channel (a->b), A advancing.
    """
    config = scenario_config(mechanism, threshold, recovery, selective_promotion)
    scenario = Scenario(Simulator(config))
    sim = scenario.sim

    # A: injected at a, heading straight +x to (6,0); holds ch(a->b) and
    # keeps transmitting across it while it drains.
    scenario.messages["A"] = place_worm(
        sim, A_NODE, [(0, +1)], (6, 0), length=a_length
    )
    scenario.run(2)  # let A's flits flow so ch(a->b) looks active

    # B: entered at d, went -y to a, now needs +x across A's channel.
    # It arrives while A is advancing => first-attempt test gives G.
    scenario.messages["B"] = place_worm(
        sim, D_NODE, [(1, -1)], B_NODE, length=16
    )
    scenario.run(12)  # B's channel (d->a) has now been silent for > t1

    # C: entered at c, went -x to d, needs -y across B's channel.
    # B was already blocked when C arrived => P.
    scenario.messages["C"] = place_worm(
        sim, C_NODE, [(0, -1)], A_NODE, length=16
    )
    scenario.run(8)

    # D: entered at b, went +y to c, needs -x across C's channel => P.
    scenario.messages["D"] = place_worm(
        sim, B_NODE, [(1, +1)], D_NODE, length=16
    )
    return scenario


def build_figure3(
    mechanism: str = "ndm",
    threshold: int = 16,
    recovery: str = "none",
    selective_promotion: bool = False,
) -> Scenario:
    """Figure 3: A leaves, E takes its channel and closes a true deadlock.

    Cycle after setup: B -> ch(a->b) held by E -> ch(b->c) held by D ->
    ch(c->d) held by C -> ch(d->a) held by B.
    """
    scenario = build_figure2(
        mechanism, threshold, recovery, a_length=36,
        selective_promotion=selective_promotion,
    )
    sim = scenario.sim
    ab = channel_between(sim, A_NODE, B_NODE)

    # Wait for A's tail to release ch(a->b) ...
    ok = scenario.run_until(lambda s: ab.occupant is None, limit=500)
    if not ok:
        raise RuntimeError("A never released ch(a->b)")
    # ... and hand it to the newly arriving E before B can re-route.
    scenario.messages["E"] = place_entering(
        sim, A_NODE, C_NODE, length=16, first_vc=ab
    )
    return scenario


def build_figure4(
    threshold: int = 16, selective_promotion: bool = False
) -> Scenario:
    """Figure 4: progressive recovery of B removes the Figure 3 deadlock."""
    return build_figure3(
        "ndm", threshold, recovery="progressive",
        selective_promotion=selective_promotion,
    )


def build_simultaneous_blocking(
    mechanism: str = "ndm",
    threshold: int = 16,
    recovery: str = "none",
    selective_promotion: bool = False,
) -> Scenario:
    """The paper's simultaneous-blocking corner case (Section 3).

    "It may happen that several messages involved in a deadlock block
    simultaneously.  In this case, deadlock is detected by several
    messages, because they are blocked by another message that is still
    advancing."

    Construction: two advancing messages A1 (on ch(a->b)) and A2 (on
    ch(c->d)) give both B and D a G flag; when A1/A2 drain, newcomers E
    and F take their channels and close the cycle {B, E, D, F}.  Both B
    and D hold G, so both detect — recovery is invoked twice for one
    deadlock, the overhead case the paper describes as infrequent.
    """
    config = scenario_config(mechanism, threshold, recovery, selective_promotion)
    scenario = Scenario(Simulator(config))
    sim = scenario.sim

    scenario.messages["A1"] = place_worm(
        sim, A_NODE, [(0, +1)], (6, 0), length=30
    )
    scenario.messages["A2"] = place_worm(
        sim, C_NODE, [(0, -1)], (1, 1), length=30
    )
    scenario.run(2)

    # B and D block in the same cycle, each on an advancing root -> G.
    scenario.messages["B"] = place_worm(
        sim, D_NODE, [(1, -1)], B_NODE, length=16
    )
    scenario.messages["D"] = place_worm(
        sim, B_NODE, [(1, +1)], D_NODE, length=16
    )

    ab = channel_between(sim, A_NODE, B_NODE)
    cd = channel_between(sim, C_NODE, D_NODE)
    ok = scenario.run_until(
        lambda s: ab.occupant is None and cd.occupant is None, limit=500
    )
    if not ok:
        raise RuntimeError("A1/A2 never released their channels")
    scenario.messages["E"] = place_entering(
        sim, A_NODE, C_NODE, length=16, first_vc=ab
    )
    scenario.messages["F"] = place_entering(
        sim, C_NODE, A_NODE, length=16, first_vc=cd
    )
    return scenario


def build_figure5(
    mechanism: str = "ndm",
    threshold: int = 16,
    selective_promotion: bool = False,
) -> Tuple[Scenario, Message]:
    """Figure 5: F re-closes the cycle through the channel B freed.

    Builds Figure 3, waits until B is (or would be) marked, removes B as
    the recovery mechanism would, and immediately lets F acquire B's freed
    channel ch(d->a).  F's first flit across it promotes C's G/P flag to
    G, so the new deadlock {C, D, E, F} is detected by C.

    Returns the scenario and the removed message B.
    """
    scenario = build_figure3(
        mechanism, threshold, recovery="none",
        selective_promotion=selective_promotion,
    )
    sim = scenario.sim
    b = scenario.messages["B"]

    # Run until the detector marks B (the Figure 3/4 outcome).
    ok = scenario.run_until(lambda s: b.marked_deadlocked, limit=2000)
    if not ok:
        raise RuntimeError("B was never detected; Figure 3 setup failed")

    # Recover B by hand (deterministically, so C cannot race F for the
    # freed channel): free its worm exactly like progressive recovery.
    sim.free_worm(b, sim.cycle)
    b.status = MessageStatus.RECOVERING

    da = channel_between(sim, D_NODE, A_NODE)
    scenario.messages["F"] = place_entering(
        sim, D_NODE, B_NODE, length=16, first_vc=da
    )
    return scenario, b
