"""Scripted reconstructions of the paper's figure scenarios."""

from repro.figures.scenarios import (
    Scenario,
    build_figure2,
    build_figure3,
    build_figure4,
    build_figure5,
    build_simultaneous_blocking,
    channel_between,
    place_entering,
    place_worm,
    scenario_config,
)

__all__ = [
    "Scenario",
    "build_figure2",
    "build_figure3",
    "build_figure4",
    "build_figure5",
    "build_simultaneous_blocking",
    "channel_between",
    "place_entering",
    "place_worm",
    "scenario_config",
]
