"""Reproduction of López, Martínez & Duato (HPCA 1998):
"A Very Efficient Distributed Deadlock Detection Mechanism for Wormhole
Networks".

Public API quick tour::

    from repro import SimulationConfig, Simulator

    config = SimulationConfig(radix=8, dimensions=2)          # 64-node torus
    config.traffic.injection_rate = 0.3                       # flits/cycle/node
    config.detector.mechanism = "ndm"                         # the paper's NDM
    config.detector.threshold = 32                            # t2 in cycles
    stats = Simulator(config).run()
    print(stats.summary())

Sub-packages:

* ``repro.core`` — deadlock detection mechanisms (NDM, PDM, timeouts) and
  recovery schemes;
* ``repro.network`` — the flit-level wormhole simulator substrate;
* ``repro.traffic`` — destination patterns and message-length workloads;
* ``repro.analysis`` — ground-truth deadlock analysis and saturation search;
* ``repro.metrics`` — statistics;
* ``repro.experiments`` — the harness regenerating the paper's tables;
* ``repro.figures`` — scripted reconstructions of the paper's figures 2-5.
"""

from repro.core.detector import DeadlockDetector
from repro.core.ndm import NewDetectionMechanism
from repro.core.pdm import PreviousDetectionMechanism
from repro.core.registry import detector_names, make_detector
from repro.metrics.stats import SimulationStats
from repro.network.config import (
    DetectorConfig,
    SimulationConfig,
    TrafficConfig,
    paper_config,
    quick_config,
)
from repro.network.simulator import Simulator
from repro.network.topology import KAryNCube, Mesh, Topology

__version__ = "1.0.0"

__all__ = [
    "DeadlockDetector",
    "DetectorConfig",
    "KAryNCube",
    "Mesh",
    "NewDetectionMechanism",
    "PreviousDetectionMechanism",
    "SimulationConfig",
    "SimulationStats",
    "Simulator",
    "Topology",
    "TrafficConfig",
    "detector_names",
    "make_detector",
    "paper_config",
    "quick_config",
    "__version__",
]
