"""Finding records and the two output formatters (text and JSON)."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, List


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    Attributes:
        path: file the violation is in (as given to the engine).
        line: 1-based line of the offending construct.
        col: 0-based column of the offending construct.
        code: stable rule code (``DET001`` ... ``PROTO002``).
        message: one-line description of what is wrong *here*.
        hint: the rule's generic autofix hint (how to resolve or disable).
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def format_text(findings: Iterable[Finding], verbose: bool = False) -> str:
    """``file:line:col: CODE message`` per finding, sorted by location."""
    lines: List[str] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code)):
        lines.append(f"{f.location()}: {f.code} {f.message}")
        if verbose and f.hint:
            lines.append(f"    hint: {f.hint}")
    return "\n".join(lines)


def format_json(findings: Iterable[Finding]) -> str:
    """Machine-readable form: a JSON array of finding objects."""
    payload = [
        asdict(f)
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
    ]
    return json.dumps(payload, indent=2, sort_keys=True)
