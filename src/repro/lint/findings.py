"""Finding records and the output formatters (text, JSON, SARIF)."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    Attributes:
        path: file the violation is in (as given to the engine).
        line: 1-based line of the offending construct.
        col: 0-based column of the offending construct.
        code: stable rule code (``DET001`` ... ``PROTO002``).
        message: one-line description of what is wrong *here*.
        hint: the rule's generic autofix hint (how to resolve or disable).
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def format_text(findings: Iterable[Finding], verbose: bool = False) -> str:
    """``file:line:col: CODE message`` per finding, sorted by location."""
    lines: List[str] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code)):
        lines.append(f"{f.location()}: {f.code} {f.message}")
        if verbose and f.hint:
            lines.append(f"    hint: {f.hint}")
    return "\n".join(lines)


def format_json(findings: Iterable[Finding]) -> str:
    """Machine-readable form: a JSON array of finding objects."""
    payload = [
        asdict(f)
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
    ]
    return json.dumps(payload, indent=2, sort_keys=True)


#: SARIF 2.1.0 constants (the schema GitHub code scanning ingests).
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_SARIF_VERSION = "2.1.0"


def format_sarif(
    findings: Iterable[Finding],
    rule_meta: Sequence[Tuple[str, str, str]] = (),
) -> str:
    """SARIF 2.1.0 log for CI upload (GitHub code-scanning annotations).

    ``rule_meta`` is ``(code, summary, hint)`` per registered rule —
    passed in by the CLI so this module stays free of a registry import.
    Columns are converted to SARIF's 1-based convention.
    """
    rules: List[Dict[str, Any]] = [
        {
            "id": code,
            "shortDescription": {"text": summary},
            "help": {"text": hint},
        }
        for code, summary, hint in rule_meta
    ]
    results: List[Dict[str, Any]] = [
        {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
    ]
    log: Dict[str, Any] = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
