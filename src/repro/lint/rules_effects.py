"""Effect rules (EFF001-EFF004, PROTO003) over the dataflow summaries.

These rules consume ``module.effect_index`` — the engine-built
:class:`~repro.lint.effects.EffectIndex` — and check transitive effect
summaries against the contracts declared in
:mod:`repro.lint.contracts` (whose phase tables live next to
``CycleKernel`` in ``repro/network/kernel.py``).

Reporting convention: when the offending write lives in the module being
linted, the finding lands on the write's own line; when it is only
*reached* from here (a callee in another module), the finding lands on
the anchoring method's ``def`` line and names the origin.  Either way a
finding is definite — unresolved calls contribute no effects (see
``repro.lint.effects``), so every reported write provably happens.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint import contracts
from repro.lint.effects import (
    EffectIndex,
    EffectSummary,
    _iter_own_nodes,
)
from repro.lint.findings import Finding
from repro.lint.module import ClassSummary, ModuleInfo, dotted_name
from repro.lint.registry import Rule, register_rule

_DETECTOR_ROOT = "repro.core.detector.DeadlockDetector"


def _effect_index(module: ModuleInfo) -> Optional[EffectIndex]:
    index = getattr(module, "effect_index", None)
    if isinstance(index, EffectIndex):
        return index
    return None


def _class_index(module: ModuleInfo) -> Dict[str, ClassSummary]:
    index = getattr(module, "class_index", None)
    if isinstance(index, dict):
        return index
    return {}


def _detector_chain(
    cls: ClassSummary, index: Dict[str, ClassSummary]
) -> Optional[List[ClassSummary]]:
    """Ancestry up to (excluding) DeadlockDetector, or None."""
    chain: List[ClassSummary] = [cls]
    current = cls
    seen = {cls.qualname}
    while True:
        next_cls: Optional[ClassSummary] = None
        for base in current.bases:
            if base == _DETECTOR_ROOT or base.endswith(".DeadlockDetector"):
                return chain
            resolved = index.get(base) or index.get(
                f"{current.module}.{base}"
            )
            if resolved is not None and resolved.qualname not in seen:
                next_cls = resolved
                break
        if next_cls is None:
            return None
        chain.append(next_cls)
        seen.add(next_cls.qualname)
        current = next_cls


class _EffectRule(Rule):
    """Shared origin-aware reporting for the effect rules."""

    def _contract_finding(
        self,
        module: ModuleInfo,
        summary: EffectSummary,
        attr: str,
        what: str,
    ) -> Finding:
        origin_module, origin_qual, line, col = summary.trans_writes[attr]
        if origin_module == module.module_name:
            suffix = (
                ""
                if origin_qual == summary.qualname
                else f" (reached via {origin_qual})"
            )
            return self.finding(
                module,
                line,
                col,
                f"{what} writes '{attr}' outside its declared effect "
                f"contract{suffix}",
            )
        return self.finding(
            module,
            summary.lineno,
            summary.col,
            f"{what} writes '{attr}' outside its declared effect contract "
            f"via {origin_qual}",
        )


@register_rule
class PhaseContractRule(_EffectRule):
    code = "EFF001"
    summary = (
        "cycle phases and detector hooks must write only state their "
        "declared effect contract allows"
    )
    hint = (
        "move the write to a phase/hook whose contract covers it, extend "
        "PHASE_EFFECTS next to CycleKernel (with justification) if the "
        "contract itself is wrong, or line-waive with a rationale comment"
    )
    scopes = ("repro.network", "repro.core", "repro.faults")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        effect_index = _effect_index(module)
        if effect_index is None:
            return
        class_index = _class_index(module)
        for cls in module.classes:
            for method in sorted(
                cls.methods & set(contracts.PHASE_METHODS)
            ):
                phase = contracts.PHASE_METHODS[method]
                yield from self._check_anchor(
                    module,
                    effect_index,
                    cls,
                    method,
                    contracts.PHASE_EFFECTS[phase],
                    f"phase '{phase}' ({cls.name}.{method})",
                )
            if _detector_chain(cls, class_index) is not None:
                for method in sorted(
                    cls.methods & set(contracts.HOOK_CONTRACTS)
                ):
                    yield from self._check_anchor(
                        module,
                        effect_index,
                        cls,
                        method,
                        contracts.HOOK_CONTRACTS[method].writes,
                        f"detector hook {cls.name}.{method}",
                    )

    def _check_anchor(
        self,
        module: ModuleInfo,
        effect_index: EffectIndex,
        cls: ClassSummary,
        method: str,
        allowed: FrozenSet[str],
        what: str,
    ) -> Iterator[Finding]:
        summary = effect_index.summary(f"{cls.qualname}.{method}")
        if summary is None:
            return
        for attr in sorted(set(summary.trans_writes) - allowed):
            yield self._contract_finding(module, summary, attr, what)


@register_rule
class WakeCoverageRule(_EffectRule):
    code = "EFF002"
    summary = (
        "a write that can unblock a parked waiter must reach an "
        "event-engine wake call"
    )
    hint = (
        "wake the affected waiters on the same path (clear route_asleep/"
        "move_asleep through the channel wake loops), or line-waive with "
        "a comment naming the caller that provably wakes afterwards"
    )
    scopes = ("repro.network", "repro.core", "repro.faults")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        effect_index = _effect_index(module)
        if effect_index is None:
            return
        for qualname in sorted(effect_index.summaries):
            summary = effect_index.summaries[qualname]
            if summary.module_name != module.module_name:
                continue
            if summary.trans_wake:
                continue
            label = qualname[len(module.module_name) + 1:]
            for site in summary.writes:
                if site.obligation is None:
                    continue
                yield self.finding(
                    module,
                    site.line,
                    site.col,
                    f"write of '{site.attr}' ({site.obligation}) can "
                    "unblock a parked waiter, but no event-engine wake "
                    f"is reachable from {label}",
                )


@register_rule
class SharedTrajectoryRule(_EffectRule):
    code = "EFF003"
    summary = (
        "shared-trajectory batch observers may write only G/P flags and "
        "the wake surface on shared network objects"
    )
    hint = (
        "keep per-cell results in observer-local SoA state (masks, "
        "counters, event lists); the shared trajectory must be "
        "threshold-independent"
    )
    scopes = ("repro.network", "repro.core")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        effect_index = _effect_index(module)
        if effect_index is None:
            return
        class_index = _class_index(module)
        for cls in module.classes:
            if not self._shares_trajectory(cls, class_index):
                continue
            reported: Set[Tuple[str, int, int]] = set()
            prefix = cls.qualname + "."
            for qualname in sorted(effect_index.summaries):
                if not qualname.startswith(prefix):
                    continue
                summary = effect_index.summaries[qualname]
                offending = (
                    set(summary.trans_writes)
                    - contracts.SHARED_TRAJECTORY_ALLOWED
                )
                for attr in sorted(offending):
                    origin = summary.trans_writes[attr]
                    key = (attr, origin[2], origin[3])
                    if key in reported:
                        continue
                    reported.add(key)
                    yield self._contract_finding(
                        module,
                        summary,
                        attr,
                        f"shared-trajectory observer {cls.name}",
                    )

    @staticmethod
    def _shares_trajectory(
        cls: ClassSummary, index: Dict[str, ClassSummary]
    ) -> bool:
        current: Optional[ClassSummary] = cls
        seen: Set[str] = set()
        while current is not None and current.qualname not in seen:
            seen.add(current.qualname)
            marker = current.class_attrs.get(
                contracts.SHARES_TRAJECTORY_ATTR
            )
            if marker is not None:
                return marker is True
            next_cls: Optional[ClassSummary] = None
            for base in current.bases:
                resolved = index.get(base) or index.get(
                    f"{current.module}.{base}"
                )
                if resolved is not None and resolved.qualname not in seen:
                    next_cls = resolved
                    break
            current = next_cls
        return False


_MATH_SANITIZERS = frozenset({"floor", "ceil", "trunc", "isqrt", "gcd", "comb"})


def _expr_tainted(expr: ast.expr, tainted: Set[str]) -> bool:
    """Whether evaluating ``expr`` can produce a float-contaminated value.

    Comparison results are bools and ``int(...)`` re-quantizes, so both
    stop the descent; ``/``, float literals, ``float()``/``math.*`` calls
    and already-tainted locals taint the whole expression.
    """
    stack: List[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Compare):
            continue
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name == "int":
                continue
            if name is not None:
                parts = name.split(".")
                if parts[0] == "math" and parts[-1] not in _MATH_SANITIZERS:
                    return True
                if parts[-1] in ("float", "perf_counter", "process_time"):
                    return True
            stack.extend(ast.iter_child_nodes(node))
            continue
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


@register_rule
class FloatFlowRule(Rule):
    code = "EFF004"
    summary = (
        "no float arithmetic flowing into behavioural (digest-relevant) "
        "fields"
    )
    hint = (
        "behavioural state must stay integral for bit-identical digests: "
        "use //, integer thresholds, and int() at the boundary; floats "
        "belong in stats/telemetry fields only"
    )
    scopes = ("repro.network", "repro.core")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, func)

    def _check_function(
        self, module: ModuleInfo, func: ast.AST
    ) -> Iterator[Finding]:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        tainted: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in _iter_own_nodes(func):
                if isinstance(node, ast.Assign):
                    if _expr_tainted(node.value, tainted):
                        for target in node.targets:
                            if (
                                isinstance(target, ast.Name)
                                and target.id not in tainted
                            ):
                                tainted.add(target.id)
                                changed = True
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if (
                        isinstance(node.op, ast.Div)
                        or _expr_tainted(node.value, tainted)
                    ) and node.target.id not in tainted:
                        tainted.add(node.target.id)
                        changed = True
        for node in _iter_own_nodes(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in contracts.DOMAIN
                        and _expr_tainted(node.value, tainted)
                    ):
                        yield self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            "float-tainted value written to behavioural "
                            f"field '{target.attr}'",
                        )
            elif isinstance(node, ast.AugAssign):
                if (
                    isinstance(node.target, ast.Attribute)
                    and node.target.attr in contracts.DOMAIN
                    and (
                        isinstance(node.op, ast.Div)
                        or _expr_tainted(node.value, tainted)
                    )
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        "float-tainted update of behavioural field "
                        f"'{node.target.attr}'",
                    )


@register_rule
class DeadlinePurityRule(Rule):
    code = "PROTO003"
    summary = (
        "blocked_deadline/probe_phase must not mutate detector state "
        "behind the caches, read wall-clock, or draw randomness"
    )
    hint = (
        "compute deadlines purely from channel counters (the cached "
        "value must stay a valid lower bound); move state updates into "
        "the routing hooks and randomness into seeded draws elsewhere"
    )
    scopes = ()  # detectors may live anywhere

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        effect_index = _effect_index(module)
        if effect_index is None:
            return
        class_index = _class_index(module)
        for cls in module.classes:
            if _detector_chain(cls, class_index) is None:
                continue
            if "blocked_deadline" in cls.methods:
                summary = effect_index.summary(
                    f"{cls.qualname}.blocked_deadline"
                )
                if summary is not None:
                    # Domain-attribute writes are EFF001's (the hook
                    # contract is empty); PROTO003 adds the rest of the
                    # purity surface: private-state mutation and time/
                    # randomness sources.
                    for site in summary.writes:
                        if site.attr in contracts.DOMAIN:
                            continue
                        yield self.finding(
                            module,
                            site.line,
                            site.col,
                            f"{cls.name}.blocked_deadline mutates "
                            f"'{site.attr}'; cached deadlines must stay "
                            "valid lower bounds",
                        )
                    yield from self._clock_and_rng(
                        module, cls, summary, "blocked_deadline"
                    )
            if "probe_phase" in cls.methods:
                summary = effect_index.summary(
                    f"{cls.qualname}.probe_phase"
                )
                if summary is not None:
                    yield from self._clock_and_rng(
                        module, cls, summary, "probe_phase"
                    )

    def _clock_and_rng(
        self,
        module: ModuleInfo,
        cls: ClassSummary,
        summary: EffectSummary,
        hook: str,
    ) -> Iterator[Finding]:
        for origin, verb in (
            (summary.trans_wallclock, "reads wall-clock time"),
            (summary.trans_rng, "draws randomness"),
        ):
            if origin is None:
                continue
            origin_module, origin_qual, line, col = origin
            if origin_module == module.module_name:
                suffix = (
                    ""
                    if origin_qual == summary.qualname
                    else f" (reached via {origin_qual})"
                )
                yield self.finding(
                    module,
                    line,
                    col,
                    f"{cls.name}.{hook} {verb}{suffix}; detection "
                    "scheduling must be cycle-deterministic",
                )
            else:
                yield self.finding(
                    module,
                    summary.lineno,
                    summary.col,
                    f"{cls.name}.{hook} {verb} via {origin_qual}; "
                    "detection scheduling must be cycle-deterministic",
                )
