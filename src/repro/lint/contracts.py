"""Declared effect contracts for cycle phases and detector hooks.

The *effect domain* — the behavioural attribute names of Message /
VirtualChannel / PhysicalChannel / Router that the three engines must
agree on — is declared next to :class:`~repro.network.kernel.CycleKernel`
(``EFFECT_GROUPS`` / ``PHASE_EFFECTS``), because that file owns the phase
sequencing the contracts describe.  This module re-exports those tables
and adds the pieces that belong to the lint layer:

* per-hook contracts for the :class:`~repro.core.detector.DeadlockDetector`
  surface (which effect groups each hook may write, and whether it is
  expected to wake parked work);
* *role* contracts for calls the analyzer cannot resolve statically but
  whose receiver attribute names a well-known collaborator
  (``self.detector.…``, ``self.recovery.recover``, ``pc.on_i_reset``);
* the wake-significance classifier: which writes can unblock a parked
  waiter (VC release, counter restart, P->G promotion, fault-edge heal)
  and therefore carry an EFF002 wake obligation.

Everything here is *data*; the dataflow engine lives in
:mod:`repro.lint.effects` and the rules in :mod:`repro.lint.rules_effects`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.network.kernel import (  # noqa: F401 - re-exported contract tables
    EFFECT_GROUPS,
    PHASE_EFFECTS,
    PHASE_METHODS,
    PHASE_SEQUENCE,
)

#: Every behavioural attribute name the analyzer tracks.  Attribute
#: writes outside this set (stats fields, detector-private state,
#: tracer/telemetry buffers) are invisible to the EFF rules.
DOMAIN: FrozenSet[str] = frozenset().union(*EFFECT_GROUPS.values())

#: The event-engine parking surface (sleep flags + waiter registries).
PARK: FrozenSet[str] = EFFECT_GROUPS["park"]


def _groups(*names: str) -> FrozenSet[str]:
    out: FrozenSet[str] = frozenset()
    for name in names:
        out |= EFFECT_GROUPS[name]
    return out


@dataclass(frozen=True)
class RoleContract:
    """Declared effects of a hook or an unresolvable collaborator call.

    ``writes`` is the set of domain attributes the callee may touch;
    ``wakes`` declares whether the callee performs an event-engine wake
    (so a caller's EFF002 obligation is discharged through it).
    """

    name: str
    writes: FrozenSet[str]
    wakes: bool = False


#: DeadlockDetector hook name -> contract.  The routing-side hooks may
#: maintain G/P flags and wake the waiters those flags park; the query
#: hooks (``blocked_deadline`` / ``probe_phase`` / ``periodic_check``)
#: must not write behavioural state at all — PROTO003 additionally
#: forbids wall-clock/RNG there so cached deadlines stay valid lower
#: bounds.
HOOK_CONTRACTS: Dict[str, RoleContract] = {
    "attach": RoleContract("attach", _groups("gp", "counters")),
    "on_blocked_attempt": RoleContract(
        "on_blocked_attempt", _groups("gp", "park"), wakes=True
    ),
    "on_message_routed": RoleContract(
        "on_message_routed", _groups("gp", "park"), wakes=True
    ),
    "on_vc_released": RoleContract(
        "on_vc_released", _groups("gp", "park"), wakes=True
    ),
    "on_message_removed": RoleContract(
        "on_message_removed", _groups("gp", "park")
    ),
    "periodic_check": RoleContract("periodic_check", frozenset()),
    "probe_phase": RoleContract("probe_phase", frozenset()),
    "blocked_deadline": RoleContract("blocked_deadline", frozenset()),
}

#: Recovery managers tear worms down: they may write anything except
#: fault state, and free_worm's release path wakes parked waiters.
RECOVER_CONTRACT = RoleContract(
    "recover", DOMAIN - EFFECT_GROUPS["faults"], wakes=True
)

#: The ``on_i_reset`` callback re-promotes P flags to G and wakes the
#: header waiters parked on them (repro.core.ndm._simple_reset_hook).
ON_I_RESET_CONTRACT = RoleContract(
    "on_i_reset", _groups("gp", "park"), wakes=True
)

#: Receiver attribute name -> role, for calls the engine cannot resolve
#: to a concrete function.  ``x.detector.hook(...)`` applies the hook
#: contract for ``hook``; ``x.recovery.recover(...)`` the recovery
#: contract; ``pc.on_i_reset(...)`` (or an alias of it) the reset-hook
#: contract.  Tracer calls are telemetry-only.
ATTR_ROLES: Dict[str, str] = {
    "detector": "hook",
    "recovery": "recover",
    "tracer": "pure",
    "on_i_reset": "on_i_reset",
}


def role_contract(role: str, method: Optional[str]) -> Optional[RoleContract]:
    """Contract applied to a call through a role receiver (or None)."""
    if role == "hook":
        if method is None:
            return None
        return HOOK_CONTRACTS.get(method)
    if role == "recover":
        return RECOVER_CONTRACT if method == "recover" else None
    if role == "on_i_reset":
        return ON_I_RESET_CONTRACT
    if role == "pure":
        return RoleContract("pure", frozenset())
    return None


# ----------------------------------------------------------------------
# Wake-significance (EFF002)
# ----------------------------------------------------------------------
#: Attributes whose write means "a parked message is being woken":
#: clearing a sleep flag is the event engine's wake primitive.
WAKE_WRITE_ATTRS: FrozenSet[str] = frozenset({"route_asleep", "move_asleep"})

#: Attributes writable by an observer sharing the batch trajectory
#: (EFF003): per-cell detector state is private (outside the domain),
#: and the only shared state it may maintain is the channel G/P flag
#: plus the wake surface that promotions must drive.
SHARED_TRAJECTORY_ALLOWED: FrozenSet[str] = _groups("gp", "park")

#: Marker class attribute anchoring EFF003 (set on BatchObserver and
#: its per-cell probe units).
SHARES_TRAJECTORY_ATTR = "shares_trajectory"


def classify_wake_obligation(
    attr: str, kind: str, op: Optional[str], value_repr: Optional[str]
) -> Optional[str]:
    """Label for a write that can unblock a parked waiter, else None.

    ``kind`` is the write kind (``assign`` / ``aug`` / ...), ``op`` the
    augmented operator name when ``kind == "aug"``, and ``value_repr``
    the dotted/constant rendering of the assigned value when available.

    The four obligation families mirror the historical divergence bugs:
    VC release (PR 2 drain-termination), counter restart (PR 5
    drain-heal), P->G promotion (PR 3 / PR 7), and fault-edge heal
    (PR 5).  Parking-direction writes (allocation, P-writes, fault
    arming) carry no obligation: they can only make parked work *less*
    runnable.
    """
    if attr == "occupant":
        # Releasing a lane (occupant -> None) frees capacity.
        if kind == "assign" and value_repr == "None":
            return "vc-release"
        return None
    if attr == "free_mask":
        # OR-ing bits in frees lanes; AND-ing bits out allocates them.
        if kind == "aug" and op == "BitOr":
            return "vc-release"
        return None
    if attr == "active_since":
        # Any rewrite restarts/resumes the inactivity counter, which can
        # make a cached detection deadline reachable.
        return "counter-restart"
    if attr == "gp":
        # Only the Propagate -> Generate direction wakes header waiters.
        if value_repr is not None and "GENERATE" in value_repr:
            return "gp-promotion"
        return None
    if attr == "fault_down":
        if kind == "assign" and value_repr == "False":
            return "fault-heal"
        return None
    if attr == "stuck_mask":
        if kind == "aug" and op == "BitAnd":
            return "fault-heal"
        return None
    if attr == "usable_mask":
        # Recomputed masks may widen the usable set (heal direction);
        # the analyzer cannot see which, so every write carries the
        # obligation and the narrowing-only sites take a line waiver.
        return "fault-heal"
    return None
