"""Per-module analysis context shared by every rule.

A :class:`ModuleInfo` owns the parsed AST plus the cheap semantic maps
rules keep needing: the import table (local name -> qualified name),
inline ``# repro-lint: disable=...`` suppressions, same-module function
return annotations, and ``self.attr`` annotations per class.  Building
them once per file keeps each rule a small, focused AST visitor.
"""

from __future__ import annotations

import ast
import io
import tokenize
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

#: Marker introducing an inline suppression comment.
DISABLE_PREFIX = "repro-lint:"


def _parse_disable_comment(comment: str) -> Tuple[Optional[str], Set[str]]:
    """Parse one comment body; returns (kind, codes) or (None, empty).

    ``kind`` is ``"line"`` for ``disable=`` and ``"file"`` for
    ``disable-file=``.
    """
    body = comment.lstrip("#").strip()
    if not body.startswith(DISABLE_PREFIX):
        return None, set()
    body = body[len(DISABLE_PREFIX):].strip()
    for kind, prefix in (("file", "disable-file="), ("line", "disable=")):
        if body.startswith(prefix):
            # Anything after " - " is a free-form rationale (encouraged
            # for waivers: say *why* the finding does not apply here).
            code_list = body[len(prefix):].split(" - ", 1)[0]
            codes = {c.strip() for c in code_list.split(",") if c.strip()}
            return kind, codes
    return None, set()


def _collect_disables(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Map line -> suppressed codes, plus file-wide suppressed codes.

    A trailing comment suppresses its own line; a comment alone on a line
    suppresses the next line as well (so multi-line statements can carry
    the disable above them).
    """
    per_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return per_line, file_wide
    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        kind, codes = _parse_disable_comment(tok.string)
        if kind == "file":
            file_wide |= codes
        elif kind == "line":
            row = tok.start[0]
            own_line = lines[row - 1][: tok.start[1]].strip() == ""
            per_line.setdefault(row, set()).update(codes)
            if own_line:
                per_line.setdefault(row + 1, set()).update(codes)
    return per_line, file_wide


def dotted_name(node: ast.expr) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c`` (None for other exprs)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ClassSummary:
    """Structural facts one rule pass needs about a class definition."""

    def __init__(self, module: str, node: ast.ClassDef, imports: Dict[str, str]) -> None:
        self.module = module
        self.name = node.name
        self.qualname = f"{module}.{node.name}"
        self.lineno = node.lineno
        self.col = node.col_offset
        self.node = node
        #: Base classes, resolved to qualified names where possible.
        self.bases: List[str] = []
        for base in node.bases:
            text = dotted_name(base)
            if text is None:
                continue
            head, _, rest = text.partition(".")
            resolved = imports.get(head, head)
            self.bases.append(resolved + ("." + rest if rest else ""))
        #: Methods defined directly in this class body.
        self.methods: Set[str] = set()
        #: Class-level attribute assignments name -> constant value (or
        #: ``...`` sentinel for non-constant right-hand sides).
        self.class_attrs: Dict[str, object] = {}
        #: Annotated class-level fields (dataclass field candidates),
        #: in declaration order.
        self.annotated_fields: List[str] = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        value = (
                            stmt.value.value
                            if isinstance(stmt.value, ast.Constant)
                            else ...
                        )
                        self.class_attrs[target.id] = value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self.annotated_fields.append(stmt.target.id)


class ModuleInfo:
    """Parsed module plus the semantic maps rules share."""

    def __init__(self, path: str, source: str, module_name: str) -> None:
        self.path = path
        self.source = source
        self.module_name = module_name
        self.tree = ast.parse(source, filename=path)
        self.line_disables, self.file_disables = _collect_disables(source)

        #: local name -> qualified name for every import in the module.
        self.imports: Dict[str, str] = {}
        #: bare function/method name -> return annotation AST (last wins).
        self.func_returns: Dict[str, ast.expr] = {}
        #: (class name, attribute) -> annotation AST from ``self.x: T``
        #: statements and class-body annotations.
        self.attr_annotations: Dict[Tuple[str, str], ast.expr] = {}
        self.classes: List[ClassSummary] = []
        self._scan()

    def _scan(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.returns is not None:
                    self.func_returns[node.name] = node.returns
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                self.classes.append(
                    ClassSummary(self.module_name, node, self.imports)
                )
                self._scan_class_annotations(node)

    def _scan_class_annotations(self, cls: ast.ClassDef) -> None:
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self.attr_annotations[(cls.name, stmt.target.id)] = (
                    stmt.annotation
                )
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Attribute)
                and isinstance(node.target.value, ast.Name)
                and node.target.value.id == "self"
            ):
                self.attr_annotations[(cls.name, node.target.attr)] = (
                    node.annotation
                )

    # ------------------------------------------------------------------
    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether an inline or file-wide disable covers this finding."""
        if code in self.file_disables:
            return True
        return code in self.line_disables.get(line, set())


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from the package layout on disk."""
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem
