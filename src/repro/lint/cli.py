"""Command-line entry point: ``repro lint`` / ``python -m repro.lint``."""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.lint.engine import run_lint
from repro.lint.findings import format_json, format_text
from repro.lint.registry import all_rules


def build_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Configure the lint options (reused by the ``repro`` umbrella CLI)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="Determinism & protocol static analysis for repro.",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is machine-readable for CI annotations)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="show the autofix hint under each finding",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.set_defaults(func=run)
    return parser


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scopes) if rule.scopes else "repo-wide"
            print(f"{rule.code}  {rule.summary}")
            print(f"        scope: {scope}")
            print(f"        fix:   {rule.hint}")
        return 0
    result = run_lint(args.paths)
    if args.format == "json":
        print(format_json(result.findings))
    else:
        if result.findings:
            print(format_text(result.findings, verbose=args.verbose))
        noun = "file" if result.files_checked == 1 else "files"
        print(
            f"repro lint: {len(result.findings)} finding(s) in "
            f"{result.files_checked} {noun}"
        )
    return 1 if result.findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
