"""Command-line entry point: ``repro lint`` / ``python -m repro.lint``."""

from __future__ import annotations

import argparse
import subprocess
from pathlib import Path
from typing import List, Optional, Set

from repro.lint.engine import run_lint
from repro.lint.findings import format_json, format_sarif, format_text
from repro.lint.registry import all_rules


def build_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Configure the lint options (reused by the ``repro`` umbrella CLI)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="Determinism & protocol static analysis for repro.",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help=(
            "output format (json for machine consumption, sarif for "
            "CI code-scanning upload)"
        ),
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "lint only files changed vs. git HEAD (plus untracked); "
            "falls back to the full tree outside a git checkout"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="show the autofix hint under each finding",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.set_defaults(func=run)
    return parser


def _git_changed_files(paths: List[str]) -> Optional[List[str]]:
    """Changed-vs-HEAD plus untracked ``*.py`` files under ``paths``.

    Returns None when git is unavailable or we are not inside a
    checkout, so the caller can fall back to a full-tree run.
    """
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None
    names: Set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            out = subprocess.run(
                cmd, capture_output=True, text=True, check=True, cwd=top
            ).stdout
        except (OSError, subprocess.CalledProcessError):
            return None
        names.update(line.strip() for line in out.splitlines() if line.strip())
    roots = [Path(p).resolve() for p in paths]
    selected: List[str] = []
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        candidate = (Path(top) / name).resolve()
        if not candidate.exists():  # deletions also appear in the diff
            continue
        if any(candidate == r or r in candidate.parents for r in roots):
            selected.append(str(candidate))
    return selected


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scopes) if rule.scopes else "repo-wide"
            print(f"{rule.code}  {rule.summary}")
            print(f"        scope: {scope}")
            print(f"        fix:   {rule.hint}")
        return 0
    paths: List[str] = list(args.paths)
    if getattr(args, "changed", False):
        changed = _git_changed_files(paths)
        if changed is not None:
            paths = changed
    result = run_lint(paths)
    if args.format == "json":
        print(format_json(result.findings))
    elif args.format == "sarif":
        meta = [(r.code, r.summary, r.hint) for r in all_rules()]
        print(format_sarif(result.findings, meta))
    else:
        if result.findings:
            print(format_text(result.findings, verbose=args.verbose))
        noun = "file" if result.files_checked == 1 else "files"
        print(
            f"repro lint: {len(result.findings)} finding(s) in "
            f"{result.files_checked} {noun}"
        )
    return 1 if result.findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
