"""``repro lint`` — determinism & protocol static analysis for this repo.

A small AST-based analyzer with rules tuned to the invariants this
reproduction guarantees (bit-identical runs across hosts, engines and
``PYTHONHASHSEED`` values; detectors that fully implement the
event-engine contract).  Each rule has a stable code, a short autofix
hint, and an inline escape hatch::

    risky_call()  # repro-lint: disable=DET001

Run it as ``repro lint`` (console script), ``python -m repro.lint``, or
through :func:`run_lint` from tests and tooling.  The rule catalog lives
in ``docs/static-analysis.md``; new rules subclass :class:`Rule` and
self-register in ~30 lines (see ``repro.lint.rules``).
"""

from repro.lint.engine import LintResult, lint_file, run_lint
from repro.lint.findings import (
    Finding,
    format_json,
    format_sarif,
    format_text,
)
from repro.lint.registry import Rule, all_rules, get_rule, register_rule

# Importing the rule modules registers the built-in rules.
import repro.lint.rules as _rules  # noqa: F401
import repro.lint.rules_effects as _rules_effects  # noqa: F401

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "format_json",
    "format_sarif",
    "format_text",
    "get_rule",
    "lint_file",
    "register_rule",
    "run_lint",
]
