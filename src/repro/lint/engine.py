"""Lint driver: file discovery, cross-file index, rule dispatch.

The engine parses every target file into a :class:`ModuleInfo`, builds a
repo-wide class index (qualified name -> class summary) so rules like
PROTO001 can resolve inheritance across files, then runs each registered
rule over each module it applies to, dropping findings covered by inline
``# repro-lint: disable=`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.lint.effects import build_effect_index
from repro.lint.findings import Finding
from repro.lint.module import ClassSummary, ModuleInfo, module_name_for
from repro.lint.registry import Rule, all_rules


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def _discover(paths: Iterable[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def _load(path: Path, module_name: Optional[str]) -> Union[ModuleInfo, Finding]:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return Finding(str(path), 1, 0, "SYNTAX", f"cannot read file: {exc}")
    name = module_name if module_name is not None else module_name_for(path)
    try:
        return ModuleInfo(str(path), source, name)
    except SyntaxError as exc:
        return Finding(
            str(path), exc.lineno or 1, 0, "SYNTAX", f"syntax error: {exc.msg}"
        )


def _run_rules(
    modules: Sequence[ModuleInfo], rules: Sequence[Rule]
) -> List[Finding]:
    # Cross-file class index for inheritance-aware rules (PROTO001).
    index: Dict[str, ClassSummary] = {}
    for module in modules:
        for cls in module.classes:
            index[cls.qualname] = cls
    # Cross-file effect summaries for the EFF/PROTO003 rule family.
    effect_index = build_effect_index(modules)
    findings: List[Finding] = []
    for module in modules:
        module.class_index = index  # type: ignore[attr-defined]
        module.effect_index = effect_index  # type: ignore[attr-defined]
        for rule in rules:
            if not rule.applies_to(module.module_name):
                continue
            for finding in rule.check(module):
                if not module.is_suppressed(finding.code, finding.line):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def run_lint(
    paths: Iterable[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint files and directories; directories are walked for ``*.py``."""
    files = _discover(paths)
    modules: List[ModuleInfo] = []
    result = LintResult(files_checked=len(files))
    for path in files:
        loaded = _load(path, None)
        if isinstance(loaded, Finding):
            result.findings.append(loaded)
        else:
            modules.append(loaded)
    result.findings.extend(_run_rules(modules, rules or all_rules()))
    return result


def lint_file(
    path: Union[str, Path],
    module_name: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint a single file, optionally overriding its module name.

    The override lets fixture tests exercise scope-restricted rules on
    files living outside the package tree (e.g. a snippet checked as if
    it were ``repro.network.example``).
    """
    loaded = _load(Path(path), module_name)
    if isinstance(loaded, Finding):
        return LintResult(findings=[loaded], files_checked=1)
    return LintResult(
        findings=_run_rules([loaded], rules or all_rules()),
        files_checked=1,
    )
