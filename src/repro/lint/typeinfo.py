"""Lightweight local type inference for the iteration-order rule.

DET003 needs to answer one question: *does this expression iterate a
``set`` (or the keys of a ``dict``) whose elements are not ints?*  We
answer it with annotations and syntactically obvious constructors only —
no cross-module dataflow — so verdicts are conservative: an expression
we cannot classify is assumed safe.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from repro.lint.module import ModuleInfo, dotted_name

#: Element/key types whose hash is not randomized: iteration order of
#: int-keyed sets/dicts is stable across ``PYTHONHASHSEED`` values.
INT_LIKE = {"int", "NodeId", "MessageId"}

_SET_NAMES = {"set", "Set", "frozenset", "FrozenSet", "AbstractSet", "MutableSet"}
_DICT_NAMES = {"dict", "Dict", "Mapping", "MutableMapping", "defaultdict", "OrderedDict", "Counter"}
_WRAPPERS = {"Optional", "Final", "ClassVar", "Annotated"}


class IterVerdict:
    """Classification of an iterated expression."""

    def __init__(self, container: str, elem: Optional[str]) -> None:
        #: ``"set"`` or ``"dict_keys"``.
        self.container = container
        #: Element (set) / key (dict) type name, or None when unknown.
        self.elem = elem

    @property
    def hash_ordered(self) -> bool:
        """True when iteration order depends on object hashes."""
        return self.elem not in INT_LIKE


def _ann_base_name(node: ast.expr) -> Optional[str]:
    """Unqualified head of an annotation (``t.Set[x]`` -> ``Set``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _ann_base_name(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return None
    return None


def _elem_name(node: ast.expr) -> Optional[str]:
    base = _ann_base_name(node)
    return base


def classify_annotation(node: ast.expr) -> Optional[IterVerdict]:
    """Map an annotation AST to an iteration verdict (None = not hashed).

    ``Set[Message]`` -> set of Message; ``Dict[NodeId, int]`` -> dict
    keyed by NodeId; wrappers like ``Optional[...]`` are unwrapped.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = _ann_base_name(node.value)
        if base in _WRAPPERS:
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return classify_annotation(inner)
        args = node.slice
        if base in _SET_NAMES:
            elem = _elem_name(args) if not isinstance(args, ast.Tuple) else None
            return IterVerdict("set", elem)
        if base in _DICT_NAMES:
            if isinstance(args, ast.Tuple) and args.elts:
                return IterVerdict("dict_keys", _elem_name(args.elts[0]))
            return IterVerdict("dict_keys", None)
        return None
    base = _ann_base_name(node)
    if base in _SET_NAMES:
        return IterVerdict("set", None)
    if base in _DICT_NAMES:
        return IterVerdict("dict_keys", None)
    return None


class FunctionEnv:
    """Types of local names inside one function body."""

    def __init__(self, module: ModuleInfo, func: ast.AST, class_name: Optional[str]) -> None:
        self.module = module
        self.class_name = class_name
        self.annotations: Dict[str, ast.expr] = {}
        #: Names assigned an expression we classified as a set/dict.
        self.inferred: Dict[str, IterVerdict] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                self.annotations[node.target.id] = node.annotation
            elif isinstance(node, ast.Assign) and node.value is not None:
                verdict = self.classify(node.value, _infer_only=True)
                if verdict is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.inferred[target.id] = verdict

    # ------------------------------------------------------------------
    def classify(
        self, expr: ast.expr, _infer_only: bool = False
    ) -> Optional[IterVerdict]:
        """Verdict for iterating ``expr``; None means safe/unknown."""
        if isinstance(expr, ast.Set):
            if all(
                isinstance(e, ast.Constant) and isinstance(e.value, int)
                for e in expr.elts
            ):
                return IterVerdict("set", "int")
            return IterVerdict("set", None)
        if isinstance(expr, ast.SetComp):
            return IterVerdict("set", None)
        if isinstance(expr, ast.Call):
            return self._classify_call(expr, _infer_only)
        if isinstance(expr, ast.Name):
            if not _infer_only:
                ann = self.annotations.get(expr.id)
                if ann is not None:
                    return classify_annotation(ann)
                return self.inferred.get(expr.id)
            return None
        if isinstance(expr, ast.Attribute) and not _infer_only:
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and self.class_name is not None
            ):
                ann = self.module.attr_annotations.get(
                    (self.class_name, expr.attr)
                )
                if ann is not None:
                    return classify_annotation(ann)
            return None
        return None

    def _classify_call(
        self, call: ast.Call, _infer_only: bool
    ) -> Optional[IterVerdict]:
        func = call.func
        name = dotted_name(func)
        if name == "sorted":
            return None  # sorted() fixes the order — always safe
        if name in ("set", "frozenset"):
            if (
                len(call.args) == 1
                and isinstance(call.args[0], ast.Call)
                and dotted_name(call.args[0].func) == "range"
            ):
                return IterVerdict("set", "int")
            arg_verdict = (
                self.classify(call.args[0]) if call.args else None
            )
            elem = arg_verdict.elem if arg_verdict else None
            return IterVerdict("set", elem)
        if name in ("list", "tuple") and len(call.args) == 1:
            # list(a_set) preserves the set's hash order — recurse.
            return self.classify(call.args[0], _infer_only)
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            receiver = self.classify(func.value)
            if receiver is not None and receiver.container == "dict_keys":
                return receiver
            return None
        # Same-module function/method with a set/dict return annotation.
        bare = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if bare is not None and bare in self.module.func_returns:
            return classify_annotation(self.module.func_returns[bare])
        return None
