"""Rule base class and the global rule registry.

A rule is a class with a stable ``code``, a one-line ``summary``, an
autofix ``hint``, an optional tuple of module-name ``scopes`` it applies
to, and a ``check(module)`` method yielding :class:`Finding` objects.
Decorating it with :func:`register_rule` makes it active everywhere —
the CLI, CI, and the fixture tests discover rules through this registry,
so adding a rule is just one small class in ``repro.lint.rules``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple, Type

from repro.lint.findings import Finding
from repro.lint.module import ModuleInfo


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scopes`` restricts the rule to modules whose dotted name equals or
    lives under one of the prefixes; an empty tuple means repo-wide.
    """

    code: str = ""
    summary: str = ""
    hint: str = ""
    scopes: Tuple[str, ...] = ()

    def applies_to(self, module_name: str) -> bool:
        if not self.scopes:
            return True
        return any(
            module_name == scope or module_name.startswith(scope + ".")
            for scope in self.scopes
        )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    # Convenience constructor so rule bodies stay one-liners.
    def finding(
        self, module: ModuleInfo, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=line,
            col=col,
            code=self.code,
            message=message,
            hint=self.hint,
        )


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add a rule to the registry."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls()
    return cls


def all_rules() -> List[Rule]:
    """All registered rules, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    return _REGISTRY[code]
