"""Per-function effect summaries with call-graph fixed-point propagation.

This is the dataflow layer under the EFF rule family.  For every
function and method in the linted tree it builds an
:class:`EffectSummary`: which *domain* attributes (see
:mod:`repro.lint.contracts`) the function writes directly, whether it
performs an event-engine wake (clearing ``route_asleep`` /
``move_asleep``), which of its writes carry an EFF002 wake obligation,
and any wall-clock / RNG call sites.  A fixed-point pass then propagates
summaries over the resolved call graph, producing the *transitive*
write/wake sets the rules check against declared contracts.

Resolution is deliberately conservative in one specific way: a call the
engine cannot resolve — ``super()``, an untyped receiver, an external
library — contributes **no effects** but sets the summary's ``unknown``
flag (the lattice top).  Rules therefore report only *definite*
violations: a write the analyzer can prove happens, with no wake it can
prove reachable.  This keeps the rule family free of false positives on
idiomatic code at the cost of missing effects hidden behind dynamic
dispatch; the runtime invariant checks remain the backstop for those.

Resolved call shapes:

* ``self._m(...)`` and ``cls_local._m(...)`` via the class chain;
* ``x.m(...)`` where ``x`` is a parameter/local with an inferred class
  type (annotations, ``self.attr = param`` mining in ``__init__``,
  constructor calls, ``Sequence[T]`` element access, for-loop targets);
* ``x.detector.hook(...)`` / ``x.recovery.recover(...)`` /
  ``pc.on_i_reset(...)`` via the role table in
  :mod:`repro.lint.contracts` (applied as declared contracts);
* bare-name calls to same-module functions, imports and nested defs;
* mutator-method calls (``d.pop``, ``l.append`` …) on an attribute
  receiver, recorded as writes to that attribute rather than calls.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.lint import contracts
from repro.lint.module import ClassSummary, ModuleInfo, dotted_name

#: Method names treated as in-place mutations of their receiver.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "appendleft",
        "popleft",
        "rotate",
        "sort",
        "reverse",
    }
)

#: Wall-clock reads (PROTO003 scope: *includes* perf_counter, which the
#: repo-wide DET001 rule allows for telemetry — detector deadline/probe
#: hooks may not even read monotonic time).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Names whose calls are knowably effect-free for our purposes.
_PURE_BUILTINS = frozenset(
    {
        "len",
        "min",
        "max",
        "abs",
        "sum",
        "sorted",
        "range",
        "enumerate",
        "zip",
        "reversed",
        "isinstance",
        "issubclass",
        "repr",
        "str",
        "int",
        "float",
        "bool",
        "tuple",
        "list",
        "dict",
        "set",
        "frozenset",
        "id",
        "hash",
        "iter",
        "next",
        "getattr",
        "hasattr",
        "print",
        "format",
        "divmod",
        "round",
        "any",
        "all",
        "ValueError",
        "RuntimeError",
        "TypeError",
        "KeyError",
        "AssertionError",
        "NotImplementedError",
        "StopIteration",
    }
)

#: Annotation heads whose subscript names an element type we track.
_ELEM_CONTAINERS = frozenset(
    {
        "Sequence",
        "List",
        "list",
        "Tuple",
        "tuple",
        "Iterable",
        "Iterator",
        "Set",
        "FrozenSet",
        "Deque",
        "MutableSequence",
    }
)
_KEY_CONTAINERS = frozenset({"Dict", "dict", "Mapping", "MutableMapping"})
_WRAPPERS = frozenset({"Optional", "Final", "ClassVar", "Annotated"})


@dataclass(frozen=True)
class WriteSite:
    """One direct attribute write inside a function body."""

    attr: str
    line: int
    col: int
    #: ``assign`` / ``aug`` / ``subscript`` / ``mutcall`` / ``delete``.
    kind: str
    #: Augmented-assignment operator class name (``BitOr`` …) or None.
    op: Optional[str]
    #: Dotted/constant rendering of the assigned value when available.
    value_repr: Optional[str]
    #: Wake-obligation label from the contracts table, or None.
    obligation: Optional[str]


#: Origin of a transitive effect: (module name, qualname, line, col).
Origin = Tuple[str, str, int, int]


@dataclass
class EffectSummary:
    """Direct and (after propagation) transitive effects of one function."""

    qualname: str
    module_name: str
    class_name: Optional[str]
    lineno: int
    col: int
    #: Every direct attribute write, domain or not (PROTO003 reads all;
    #: the EFF rules filter to the domain).
    writes: List[WriteSite] = field(default_factory=list)
    #: Direct event-engine wake (``route_asleep``/``move_asleep`` = False).
    wakes: bool = False
    wallclock: List[Tuple[int, int, str]] = field(default_factory=list)
    rng: List[Tuple[int, int, str]] = field(default_factory=list)
    #: Resolved callee qualnames (call-graph edges).
    calls: List[str] = field(default_factory=list)
    #: Role-contract applications: (contract, call line, call col).
    role_calls: List[Tuple[contracts.RoleContract, int, int]] = field(
        default_factory=list
    )
    #: Count of calls the engine could not resolve (lattice top).
    unknown_calls: int = 0
    # ---- filled by the fixed-point pass -----------------------------
    trans_writes: Dict[str, Origin] = field(default_factory=dict)
    trans_wake: bool = False
    trans_unknown: bool = False
    trans_wallclock: Optional[Origin] = None
    trans_rng: Optional[Origin] = None

    def domain_write_sites(self) -> List[WriteSite]:
        return [w for w in self.writes if w.attr in contracts.DOMAIN]


class _FuncRecord:
    """A function/method definition found in the linted tree."""

    def __init__(
        self,
        qualname: str,
        module: ModuleInfo,
        node: ast.FunctionDef,
        class_key: Optional[str],
    ) -> None:
        self.qualname = qualname
        self.module = module
        self.node = node
        self.class_key = class_key


def _ann_head(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _iter_own_nodes(
    func: "Union[ast.FunctionDef, ast.AsyncFunctionDef]",
) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


class EffectIndex:
    """Cross-module function table, type oracle and summary store."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {
            m.module_name: m for m in modules
        }
        self.class_index: Dict[str, ClassSummary] = {}
        for module in modules:
            for cls in module.classes:
                self.class_index[cls.qualname] = cls
        self.functions: Dict[str, _FuncRecord] = {}
        self.summaries: Dict[str, EffectSummary] = {}
        #: (class key, attr) -> class key, mined from ``self.x = param``
        #: assignments in ``__init__`` where the parameter is annotated.
        self._init_attr_types: Dict[Tuple[str, str], str] = {}
        #: module name -> {local const name -> dotted value} for
        #: module-level aliases like ``_G = GPState.GENERATE``.
        self._const_aliases: Dict[str, Dict[str, str]] = {}
        self._attr_type_cache: Dict[Tuple[str, str], Optional[str]] = {}
        self._chain_cache: Dict[str, List[ClassSummary]] = {}
        for module in modules:
            self._collect(module)
        # _extract registers (and summarizes) nested defs as it meets
        # them, growing self.functions — iterate over a snapshot.
        for record in list(self.functions.values()):
            if record.qualname not in self.summaries:
                self.summaries[record.qualname] = _extract(self, record)
        self._propagate()

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _collect(self, module: ModuleInfo) -> None:
        consts: Dict[str, str] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                value = dotted_name(stmt.value)
                if isinstance(target, ast.Name) and value is not None:
                    consts[target.id] = value
            if isinstance(stmt, ast.FunctionDef):
                key = f"{module.module_name}.{stmt.name}"
                self.functions[key] = _FuncRecord(key, module, stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                class_key = f"{module.module_name}.{stmt.name}"
                for item in stmt.body:
                    if isinstance(item, ast.FunctionDef):
                        key = f"{class_key}.{item.name}"
                        self.functions[key] = _FuncRecord(
                            key, module, item, class_key
                        )
                        if item.name == "__init__":
                            self._mine_init_types(module, class_key, item)
        self._const_aliases[module.module_name] = consts

    def _mine_init_types(
        self, module: ModuleInfo, class_key: str, init: ast.FunctionDef
    ) -> None:
        params: Dict[str, str] = {}
        args = init.args
        for arg in list(args.args) + list(args.kwonlyargs):
            if arg.annotation is None:
                continue
            resolved = self.resolve_type(module, arg.annotation)[0]
            if resolved is not None:
                params[arg.arg] = resolved
        if not params:
            return
        for node in _iter_own_nodes(init):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(node.value, ast.Name)
                    and node.value.id in params
                ):
                    self._init_attr_types[(class_key, target.attr)] = params[
                        node.value.id
                    ]

    # ------------------------------------------------------------------
    # Type oracle
    # ------------------------------------------------------------------
    def resolve_class(
        self, module: ModuleInfo, name: str
    ) -> Optional[str]:
        """Class key for a (possibly dotted/imported) class name."""
        head, _, rest = name.partition(".")
        qualified = module.imports.get(head)
        if qualified is not None:
            candidate = qualified + ("." + rest if rest else "")
        else:
            candidate = name
        if candidate in self.class_index:
            return candidate
        local = f"{module.module_name}.{name}"
        if local in self.class_index:
            return local
        return None

    def resolve_type(
        self, module: ModuleInfo, ann: ast.expr
    ) -> Tuple[Optional[str], Optional[str]]:
        """(value class key, element class key) for an annotation."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None, None
        if isinstance(ann, ast.Subscript):
            head = _ann_head(ann.value)
            inner: ast.expr = ann.slice
            if head in _WRAPPERS:
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return self.resolve_type(module, inner)
            if head in _ELEM_CONTAINERS or head in _KEY_CONTAINERS:
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                elem = self.resolve_type(module, inner)[0]
                return None, elem
            return None, None
        name = dotted_name(ann)
        if name is None:
            return None, None
        return self.resolve_class(module, name), None

    def class_chain(self, class_key: str) -> List[ClassSummary]:
        """The class plus every resolvable ancestor (first-base walk)."""
        cached = self._chain_cache.get(class_key)
        if cached is not None:
            return cached
        chain: List[ClassSummary] = []
        seen: Set[str] = set()
        current = self.class_index.get(class_key)
        while current is not None and current.qualname not in seen:
            chain.append(current)
            seen.add(current.qualname)
            next_cls: Optional[ClassSummary] = None
            for base in current.bases:
                resolved = self.class_index.get(base) or self.class_index.get(
                    f"{current.module}.{base}"
                )
                if resolved is not None:
                    next_cls = resolved
                    break
            current = next_cls
        self._chain_cache[class_key] = chain
        return chain

    def attr_type(self, class_key: str, attr: str) -> Optional[str]:
        """Class key of ``<class_key instance>.<attr>``, if inferable."""
        cache_key = (class_key, attr)
        if cache_key in self._attr_type_cache:
            return self._attr_type_cache[cache_key]
        result: Optional[str] = None
        for cls in self.class_chain(class_key):
            module = self.modules.get(cls.module)
            if module is None:
                continue
            ann = module.attr_annotations.get((cls.name, attr))
            if ann is not None:
                result = self.resolve_type(module, ann)[0]
                break
            mined = self._init_attr_types.get((cls.qualname, attr))
            if mined is not None:
                result = mined
                break
        self._attr_type_cache[cache_key] = result
        return result

    def attr_elem_type(self, class_key: str, attr: str) -> Optional[str]:
        """Element/key class of a container-typed attribute."""
        for cls in self.class_chain(class_key):
            module = self.modules.get(cls.module)
            if module is None:
                continue
            ann = module.attr_annotations.get((cls.name, attr))
            if ann is not None:
                return self.resolve_type(module, ann)[1]
        return None

    def resolve_method(
        self, class_key: str, method: str
    ) -> Optional[str]:
        """Qualname of the definition ``method`` dispatches to."""
        for cls in self.class_chain(class_key):
            if method in cls.methods:
                return f"{cls.qualname}.{method}"
        return None

    def method_return(
        self, class_key: str, method: str
    ) -> Tuple[Optional[str], Optional[str]]:
        for cls in self.class_chain(class_key):
            if method not in cls.methods:
                continue
            module = self.modules.get(cls.module)
            if module is None:
                return None, None
            for stmt in cls.node.body:
                if (
                    isinstance(stmt, ast.FunctionDef)
                    and stmt.name == method
                    and stmt.returns is not None
                ):
                    return self.resolve_type(module, stmt.returns)
            return None, None
        return None, None

    def const_alias(self, module_name: str, name: str) -> Optional[str]:
        return self._const_aliases.get(module_name, {}).get(name)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> None:
        for summary in self.summaries.values():
            for site in summary.domain_write_sites():
                summary.trans_writes.setdefault(
                    site.attr,
                    (
                        summary.module_name,
                        summary.qualname,
                        site.line,
                        site.col,
                    ),
                )
            summary.trans_wake = summary.wakes
            summary.trans_unknown = summary.unknown_calls > 0
            if summary.wallclock:
                line, col, _what = summary.wallclock[0]
                summary.trans_wallclock = (
                    summary.module_name, summary.qualname, line, col,
                )
            if summary.rng:
                line, col, _what = summary.rng[0]
                summary.trans_rng = (
                    summary.module_name, summary.qualname, line, col,
                )
            for contract, line, col in summary.role_calls:
                if contract.wakes:
                    summary.trans_wake = True
                for attr in contract.writes:
                    summary.trans_writes.setdefault(
                        attr,
                        (summary.module_name, summary.qualname, line, col),
                    )
        changed = True
        while changed:
            changed = False
            for summary in self.summaries.values():
                for callee_name in summary.calls:
                    callee = self.summaries.get(callee_name)
                    if callee is None:
                        continue
                    for attr, origin in callee.trans_writes.items():
                        if attr not in summary.trans_writes:
                            summary.trans_writes[attr] = origin
                            changed = True
                    if callee.trans_wake and not summary.trans_wake:
                        summary.trans_wake = True
                        changed = True
                    if callee.trans_unknown and not summary.trans_unknown:
                        summary.trans_unknown = True
                        changed = True
                    if (
                        callee.trans_wallclock is not None
                        and summary.trans_wallclock is None
                    ):
                        summary.trans_wallclock = callee.trans_wallclock
                        changed = True
                    if (
                        callee.trans_rng is not None
                        and summary.trans_rng is None
                    ):
                        summary.trans_rng = callee.trans_rng
                        changed = True

    # ------------------------------------------------------------------
    def summary(self, qualname: str) -> Optional[EffectSummary]:
        return self.summaries.get(qualname)


class _Env:
    """Local binding environment of one function body."""

    def __init__(self) -> None:
        #: local name -> class key
        self.var_type: Dict[str, str] = {}
        #: local name -> element class key (for subscripts / iteration)
        self.var_elem: Dict[str, str] = {}
        #: local name -> attribute it aliases (``box = self.wake_box``)
        self.var_attr: Dict[str, str] = {}
        #: local name -> role (``hook = pc.on_i_reset``)
        self.var_role: Dict[str, str] = {}
        #: local name -> same-class method it aliases
        self.var_method: Dict[str, str] = {}
        #: local name -> nested function qualname
        self.var_func: Dict[str, str] = {}
        #: local name -> dotted constant it aliases
        self.var_const: Dict[str, str] = {}


def _extract(index: EffectIndex, record: _FuncRecord) -> EffectSummary:
    """Direct effect summary of one function definition."""
    node = record.node
    summary = EffectSummary(
        qualname=record.qualname,
        module_name=record.module.module_name,
        class_name=(
            record.class_key.rsplit(".", 1)[1]
            if record.class_key is not None
            else None
        ),
        lineno=node.lineno,
        col=node.col_offset,
    )
    # Constructors initialise every field; their writes are definitionally
    # in-contract and they run before any waiter can exist, so they get
    # an empty summary (their parameter annotations are still mined for
    # the type oracle above).
    if node.name in ("__init__", "__new__", "__post_init__"):
        return summary
    env = _build_env(index, record)
    extractor = _Extractor(index, record, env, summary)
    for child in _iter_own_nodes(node):
        extractor.visit_node(child)
    return summary


def _build_env(index: EffectIndex, record: _FuncRecord) -> _Env:
    env = _Env()
    module = record.module
    node = record.node
    if record.class_key is not None:
        env.var_type["self"] = record.class_key
    args = node.args
    for arg in list(args.args) + list(args.kwonlyargs):
        if arg.annotation is None:
            continue
        value_t, elem_t = index.resolve_type(module, arg.annotation)
        if value_t is not None:
            env.var_type[arg.arg] = value_t
        if elem_t is not None:
            env.var_elem[arg.arg] = elem_t
    for child in _iter_own_nodes(node):
        if isinstance(child, ast.FunctionDef):
            # Nested def: callable through its bare name.
            nested_key = f"{record.qualname}.<locals>.{child.name}"
            if nested_key not in index.functions:
                nested = _FuncRecord(
                    nested_key, module, child, record.class_key
                )
                index.functions[nested_key] = nested
                index.summaries[nested_key] = _extract(index, nested)
            env.var_func[child.name] = nested_key
        elif isinstance(child, ast.AnnAssign) and isinstance(
            child.target, ast.Name
        ):
            value_t, elem_t = index.resolve_type(module, child.annotation)
            if value_t is not None:
                env.var_type[child.target.id] = value_t
            if elem_t is not None:
                env.var_elem[child.target.id] = elem_t
        elif isinstance(child, ast.Assign):
            _bind_assign(index, record, env, child)
        elif isinstance(child, (ast.For, ast.AsyncFor)) and isinstance(
            child.target, ast.Name
        ):
            elem = _typ(index, record, env, child.iter)[1]
            if elem is not None:
                env.var_type[child.target.id] = elem
    return env


def _bind_assign(
    index: EffectIndex, record: _FuncRecord, env: _Env, node: ast.Assign
) -> None:
    value = node.value
    name_targets = [t for t in node.targets if isinstance(t, ast.Name)]
    attr_targets = [t for t in node.targets if isinstance(t, ast.Attribute)]
    for target in name_targets:
        # Chained through an attribute target: the name aliases it.
        for attr_target in attr_targets:
            env.var_attr[target.id] = attr_target.attr
        if isinstance(value, ast.Attribute):
            attr = value.attr
            env.var_attr.setdefault(target.id, attr)
            if attr in contracts.ATTR_ROLES:
                env.var_role[target.id] = contracts.ATTR_ROLES[attr]
            base = value.value
            if (
                isinstance(base, ast.Name)
                and base.id == "self"
                and record.class_key is not None
            ):
                resolved = index.resolve_method(record.class_key, attr)
                if resolved is not None:
                    env.var_method[target.id] = attr
            receiver_t = _typ(index, record, env, base)[0]
            if receiver_t is not None:
                attr_t = index.attr_type(receiver_t, attr)
                if attr_t is not None:
                    env.var_type[target.id] = attr_t
                elem_t = index.attr_elem_type(receiver_t, attr)
                if elem_t is not None:
                    env.var_elem[target.id] = elem_t
        else:
            dotted = dotted_name(value)
            if dotted is not None:
                env.var_const[target.id] = dotted
            value_t, elem_t = _typ(index, record, env, value)
            if value_t is not None:
                env.var_type[target.id] = value_t
            if elem_t is not None:
                env.var_elem[target.id] = elem_t


def _typ(
    index: EffectIndex,
    record: _FuncRecord,
    env: _Env,
    expr: ast.expr,
) -> Tuple[Optional[str], Optional[str]]:
    """(class key, element class key) of an expression, best effort."""
    if isinstance(expr, ast.Name):
        return env.var_type.get(expr.id), env.var_elem.get(expr.id)
    if isinstance(expr, ast.Attribute):
        base_t = _typ(index, record, env, expr.value)[0]
        if base_t is None:
            return None, None
        return (
            index.attr_type(base_t, expr.attr),
            index.attr_elem_type(base_t, expr.attr),
        )
    if isinstance(expr, ast.Subscript):
        return _typ(index, record, env, expr.value)[1], None
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            class_key = index.resolve_class(record.module, func.id)
            if class_key is not None:
                return class_key, None
            target = f"{record.module.module_name}.{func.id}"
            if target in index.functions:
                returns = index.functions[target].node.returns
                if returns is not None:
                    return index.resolve_type(record.module, returns)
            imported = record.module.imports.get(func.id)
            if imported is not None and imported in index.functions:
                rec = index.functions[imported]
                if rec.node.returns is not None:
                    return index.resolve_type(rec.module, rec.node.returns)
        elif isinstance(func, ast.Attribute):
            receiver_t = _typ(index, record, env, func.value)[0]
            if receiver_t is not None:
                return index.method_return(receiver_t, func.attr)
        return None, None
    return None, None


def _value_repr(
    index: EffectIndex, record: _FuncRecord, env: _Env, value: ast.expr
) -> Optional[str]:
    if isinstance(value, ast.Constant):
        return repr(value.value)
    dotted = dotted_name(value)
    if dotted is None:
        return None
    if "." not in dotted:
        local = env.var_const.get(dotted)
        if local is not None:
            return local
        module_const = index.const_alias(record.module.module_name, dotted)
        if module_const is not None:
            return module_const
    return dotted


class _Extractor:
    """Single pass over a function body filling its EffectSummary."""

    def __init__(
        self,
        index: EffectIndex,
        record: _FuncRecord,
        env: _Env,
        summary: EffectSummary,
    ) -> None:
        self.index = index
        self.record = record
        self.env = env
        self.summary = summary

    # -- writes --------------------------------------------------------
    def _target_attr(self, target: ast.expr) -> Optional[Tuple[str, str]]:
        """(attr, kind) written by an assignment target, if any."""
        if isinstance(target, ast.Attribute):
            return target.attr, "assign"
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Attribute):
                return base.attr, "subscript"
            if isinstance(base, ast.Name):
                aliased = self.env.var_attr.get(base.id)
                if aliased is not None:
                    return aliased, "subscript"
        return None

    def _record_write(
        self,
        attr: str,
        node: ast.AST,
        kind: str,
        op: Optional[str],
        value: Optional[ast.expr],
    ) -> None:
        value_repr = (
            _value_repr(self.index, self.record, self.env, value)
            if value is not None
            else None
        )
        obligation = contracts.classify_wake_obligation(
            attr, kind, op, value_repr
        )
        line = getattr(node, "lineno", self.summary.lineno)
        col = getattr(node, "col_offset", 0)
        self.summary.writes.append(
            WriteSite(attr, line, col, kind, op, value_repr, obligation)
        )
        if (
            attr in contracts.WAKE_WRITE_ATTRS
            and kind == "assign"
            and value_repr == "False"
        ):
            self.summary.wakes = True

    # -- calls ---------------------------------------------------------
    def _role_for_receiver(self, receiver: ast.expr) -> Optional[str]:
        if isinstance(receiver, ast.Attribute):
            return contracts.ATTR_ROLES.get(receiver.attr)
        if isinstance(receiver, ast.Name):
            return self.env.var_role.get(receiver.id)
        return None

    def _handle_call(self, node: ast.Call) -> None:
        func = node.func
        summary = self.summary
        dotted = dotted_name(func)
        if dotted is not None:
            resolved = self._resolve_import(dotted)
            if resolved in WALL_CLOCK_CALLS:
                summary.wallclock.append(
                    (node.lineno, node.col_offset, resolved)
                )
                return
            if self._is_rng(dotted, resolved):
                summary.rng.append((node.lineno, node.col_offset, dotted))
                return
        if isinstance(func, ast.Name):
            self._handle_name_call(node, func.id)
            return
        if isinstance(func, ast.Attribute):
            self._handle_attr_call(node, func)
            return
        summary.unknown_calls += 1

    def _resolve_import(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        resolved = self.record.module.imports.get(head, head)
        return resolved + ("." + rest if rest else "")

    @staticmethod
    def _is_rng(dotted: str, resolved: str) -> bool:
        parts = dotted.split(".")
        if "rng" in parts[:-1] or parts[0] == "rng":
            return True
        resolved_parts = resolved.split(".")
        return resolved_parts[0] == "random" and len(resolved_parts) > 1

    def _handle_name_call(self, node: ast.Call, name: str) -> None:
        env = self.env
        summary = self.summary
        role = env.var_role.get(name)
        if role is not None:
            contract = contracts.role_contract(role, None)
            if contract is not None:
                summary.role_calls.append(
                    (contract, node.lineno, node.col_offset)
                )
                return
        if name in env.var_func:
            summary.calls.append(env.var_func[name])
            return
        if name in env.var_method and self.record.class_key is not None:
            resolved = self.index.resolve_method(
                self.record.class_key, env.var_method[name]
            )
            if resolved is not None:
                summary.calls.append(resolved)
                return
        class_key = self.index.resolve_class(self.record.module, name)
        if class_key is not None:
            # Constructor: __init__ effects are definitionally in
            # contract (see _extract).
            return
        local = f"{self.record.module.module_name}.{name}"
        if local in self.index.functions:
            summary.calls.append(local)
            return
        imported = self.record.module.imports.get(name)
        if imported is not None and imported in self.index.functions:
            summary.calls.append(imported)
            return
        if name in _PURE_BUILTINS:
            return
        summary.unknown_calls += 1

    def _handle_attr_call(self, node: ast.Call, func: ast.Attribute) -> None:
        summary = self.summary
        method = func.attr
        receiver = func.value
        # Mutator call on an attribute (or an alias of one) == a write.
        if method in MUTATOR_METHODS:
            attr: Optional[str] = None
            if isinstance(receiver, ast.Attribute):
                attr = receiver.attr
            elif isinstance(receiver, ast.Name):
                attr = self.env.var_attr.get(receiver.id)
            if attr is not None:
                self._record_write(attr, node, "mutcall", None, None)
                return
        role = self._role_for_receiver(receiver)
        if role is not None:
            contract = contracts.role_contract(role, method)
            if contract is not None:
                summary.role_calls.append(
                    (contract, node.lineno, node.col_offset)
                )
                return
            summary.unknown_calls += 1
            return
        receiver_t = _typ(self.index, self.record, self.env, receiver)[0]
        if receiver_t is not None:
            resolved = self.index.resolve_method(receiver_t, method)
            if resolved is not None:
                summary.calls.append(resolved)
                return
        # Module-level function through an import (heapq.heappush, ...)
        dotted = dotted_name(func)
        if dotted is not None:
            qualified = self._resolve_import(dotted)
            if qualified in self.index.functions:
                summary.calls.append(qualified)
                return
            head = dotted.split(".")[0]
            if (
                head in self.record.module.imports
                and self.record.module.imports[head].split(".")[0]
                not in ("repro",)
            ):
                # External library call: not our state.
                return
        summary.unknown_calls += 1

    # -- dispatch ------------------------------------------------------
    def visit_node(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._visit_target(target, node.value)
        elif isinstance(node, ast.AugAssign):
            written = self._target_attr(node.target)
            if written is not None:
                attr, kind = written
                kind = "aug" if kind == "assign" else kind
                self._record_write(
                    attr, node, kind, type(node.op).__name__, node.value
                )
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            written = self._target_attr(node.target)
            if written is not None:
                attr, kind = written
                self._record_write(attr, node, kind, None, node.value)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                written = self._target_attr(target)
                if written is not None:
                    attr, _ = written
                    self._record_write(attr, node, "delete", None, None)
        elif isinstance(node, ast.Call):
            self._handle_call(node)

    def _visit_target(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._visit_target(element, value)
            return
        written = self._target_attr(target)
        if written is not None:
            attr, kind = written
            self._record_write(attr, target, kind, None, value)


def build_effect_index(modules: Sequence[ModuleInfo]) -> EffectIndex:
    """Build (extract + propagate) the effect index for a module set."""
    return EffectIndex(modules)
