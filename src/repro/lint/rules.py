"""Built-in rules: determinism (DET*) and protocol (PROTO*) checks.

Each rule is a small class — code, summary, autofix hint, scope, and a
``check`` generator over one :class:`ModuleInfo`.  Rules needing
cross-file facts (PROTO001) read ``module.class_index``, the engine-built
map of every linted class.  To add a rule: subclass :class:`Rule`,
decorate with :func:`register_rule`, done — the CLI, CI job and fixture
tests pick it up from the registry.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.module import ClassSummary, ModuleInfo, dotted_name
from repro.lint.registry import Rule, register_rule
from repro.lint.typeinfo import FunctionEnv


def _resolve(module: ModuleInfo, name: str) -> str:
    """Qualify a dotted name through the module's import table."""
    head, _, rest = name.partition(".")
    resolved = module.imports.get(head, head)
    return resolved + ("." + rest if rest else "")


# ----------------------------------------------------------------------
# DET001 — wall-clock reads in hot paths
# ----------------------------------------------------------------------
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register_rule
class WallClockRule(Rule):
    code = "DET001"
    summary = "no wall-clock reads in simulation hot paths"
    hint = (
        "derive timing from the simulation cycle counter; for engine "
        "telemetry use time.perf_counter(), which is allowed"
    )
    scopes = ("repro.network", "repro.core", "repro.campaign")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "time",
                "datetime",
            ):
                for alias in node.names:
                    qual = f"{node.module}.{alias.name}"
                    if qual in _WALL_CLOCK or qual == "datetime.datetime":
                        if qual in _WALL_CLOCK:
                            yield self.finding(
                                module,
                                node.lineno,
                                node.col_offset,
                                f"import of wall-clock function {qual}",
                            )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                if _resolve(module, name) in _WALL_CLOCK:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"wall-clock call {name}() in a hot-path module",
                    )


# ----------------------------------------------------------------------
# DET002 — global / unseeded randomness
# ----------------------------------------------------------------------
_RANDOM_OK = {"Random", "SystemRandom"}


@register_rule
class GlobalRandomRule(Rule):
    code = "DET002"
    summary = "no module-level random / numpy.random use outside injected RNGs"
    hint = (
        "thread a seeded random.Random instance through the call chain "
        "instead of the module-level API"
    )
    scopes = ("repro",)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        seen: Set[Tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "numpy" and (
                        alias.name == "numpy.random"
                        or alias.name.startswith("numpy.random.")
                    ):
                        yield self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            f"import of {alias.name} (global RNG state)",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in _RANDOM_OK:
                            yield self.finding(
                                module,
                                node.lineno,
                                node.col_offset,
                                "import of module-level random."
                                f"{alias.name} (global RNG state)",
                            )
                elif node.module == "numpy.random" or node.module.startswith(
                    "numpy.random."
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"import from {node.module} (global RNG state)",
                    )
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            yield self.finding(
                                module,
                                node.lineno,
                                node.col_offset,
                                "import of numpy.random (global RNG state)",
                            )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None or "." not in name:
                    continue
                resolved = _resolve(module, name)
                if (
                    resolved.startswith("random.")
                    and resolved.count(".") == 1
                    and resolved.split(".")[1] not in _RANDOM_OK
                ):
                    key = (node.lineno, node.col_offset)
                    if key not in seen:
                        seen.add(key)
                        yield self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            f"module-level {name}() call uses the global RNG",
                        )
            elif isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is None:
                    continue
                resolved = _resolve(module, name)
                if resolved == "numpy.random" or resolved.startswith(
                    "numpy.random."
                ):
                    key = (node.lineno, node.col_offset)
                    if key not in seen:
                        seen.add(key)
                        yield self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            f"use of {name} (global numpy RNG state)",
                        )


# ----------------------------------------------------------------------
# DET003 — hash-ordered iteration in simulation-order-sensitive modules
# ----------------------------------------------------------------------
def _has_keys_call(expr: ast.expr) -> bool:
    return any(
        isinstance(n, ast.Attribute) and n.attr == "keys"
        for n in ast.walk(expr)
    )


@register_rule
class SetIterationRule(Rule):
    code = "DET003"
    summary = (
        "no iteration over sets / dict.keys() of non-int keys in "
        "simulation-order-sensitive modules"
    )
    hint = (
        "wrap the iterable in sorted(...), or use an insertion-ordered "
        "Dict[Elem, None] in place of the set"
    )
    scopes = ("repro.network", "repro.core", "repro.analysis", "repro.campaign")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        yield from self._check_scope(module, module.tree, None)

    def _check_scope(
        self, module: ModuleInfo, root: ast.AST, class_name: Optional[str]
    ) -> Iterator[Finding]:
        for node in ast.iter_child_nodes(root):
            if isinstance(node, ast.ClassDef):
                yield from self._check_scope(module, node, node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node, class_name)

    def _check_function(
        self,
        module: ModuleInfo,
        func: ast.AST,
        class_name: Optional[str],
    ) -> Iterator[Finding]:
        env = FunctionEnv(module, func, class_name)
        for node in ast.walk(func):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for expr in iters:
                verdict = env.classify(expr)
                if verdict is None or not verdict.hash_ordered:
                    continue
                if verdict.container == "set":
                    yield self.finding(
                        module,
                        expr.lineno,
                        expr.col_offset,
                        "iteration over a set of non-int elements is "
                        "hash-ordered (PYTHONHASHSEED-dependent)",
                    )
                elif verdict.container == "dict_keys" and _has_keys_call(expr):
                    yield self.finding(
                        module,
                        expr.lineno,
                        expr.col_offset,
                        "iteration over .keys() of a non-int-keyed dict; "
                        "iterate the dict directly or sort",
                    )


# ----------------------------------------------------------------------
# DET004 — numpy in flit-level simulation packages
# ----------------------------------------------------------------------
@register_rule
class NumpyImportRule(Rule):
    code = "DET004"
    summary = "no numpy imports under repro.network / repro.core / repro.traffic"
    hint = (
        "the flit-level simulator is pure-python by design (see PR 2's "
        "cache-poisoning bug); keep numpy in analysis/figures layers"
    )
    scopes = ("repro.network", "repro.core", "repro.traffic")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "numpy":
                        yield self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            f"numpy import ({alias.name}) in a "
                            "simulation-kernel package",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[0] == "numpy":
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"numpy import (from {node.module}) in a "
                        "simulation-kernel package",
                    )


# ----------------------------------------------------------------------
# PROTO001 — detector subclasses must honour the event-engine contract
# ----------------------------------------------------------------------
_DETECTOR_ROOT = "repro.core.detector.DeadlockDetector"


@register_rule
class DetectorContractRule(Rule):
    code = "PROTO001"
    summary = "Detector subclasses must implement the full event-engine surface"
    hint = (
        "override blocked_deadline() (or set can_sleep_blocked = False) "
        "whenever on_blocked_attempt is overridden; set "
        "needs_periodic_check = True next to periodic_check; set "
        "has_probe_phase = True next to probe_phase (and vice versa); "
        "give every concrete detector a name"
    )
    scopes = ()  # detectors may live anywhere

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        index: Dict[str, ClassSummary] = getattr(module, "class_index", {})
        for cls in module.classes:
            chain = self._detector_chain(cls, index)
            if chain is None:
                continue
            yield from self._check_class(module, cls, chain)

    def _detector_chain(
        self, cls: ClassSummary, index: Dict[str, ClassSummary]
    ) -> Optional[List[ClassSummary]]:
        """Ancestry up to (excluding) DeadlockDetector, or None."""
        chain: List[ClassSummary] = [cls]
        current = cls
        seen = {cls.qualname}
        while True:
            next_cls: Optional[ClassSummary] = None
            for base in current.bases:
                if base == _DETECTOR_ROOT or base.endswith(
                    ".DeadlockDetector"
                ):
                    return chain
                # Bare names are same-module bases (imports are already
                # qualified by ClassSummary).
                resolved = index.get(base) or index.get(
                    f"{current.module}.{base}"
                )
                if resolved is not None and resolved.qualname not in seen:
                    next_cls = resolved
                    break
            if next_cls is None:
                return None
            chain.append(next_cls)
            seen.add(next_cls.qualname)
            current = next_cls

    @staticmethod
    def _effective_attr(chain: List[ClassSummary], name: str) -> object:
        for cls in chain:  # most-derived first
            if name in cls.class_attrs:
                return cls.class_attrs[name]
        return None

    @staticmethod
    def _defines(chain: List[ClassSummary], name: str) -> bool:
        return any(
            name in cls.methods or name in cls.class_attrs for cls in chain
        )

    def _check_class(
        self, module: ModuleInfo, cls: ClassSummary, chain: List[ClassSummary]
    ) -> Iterator[Finding]:
        overrides_blocked = "on_blocked_attempt" in cls.methods
        if overrides_blocked:
            has_deadline = self._defines(chain, "blocked_deadline")
            sleeps = self._effective_attr(chain, "can_sleep_blocked")
            if not has_deadline and sleeps is not False:
                yield self.finding(
                    module,
                    cls.lineno,
                    cls.col,
                    f"{cls.name} overrides on_blocked_attempt but neither "
                    "overrides blocked_deadline nor sets "
                    "can_sleep_blocked = False; the event engine would "
                    "sleep through its detections",
                )
        if "periodic_check" in cls.methods:
            if self._effective_attr(chain, "needs_periodic_check") is not True:
                yield self.finding(
                    module,
                    cls.lineno,
                    cls.col,
                    f"{cls.name} overrides periodic_check without setting "
                    "needs_periodic_check = True; the simulator will "
                    "never call it",
                )
        if "probe_phase" in cls.methods:
            if self._effective_attr(chain, "has_probe_phase") is not True:
                yield self.finding(
                    module,
                    cls.lineno,
                    cls.col,
                    f"{cls.name} overrides probe_phase without setting "
                    "has_probe_phase = True; the simulator will never "
                    "run its probe phase",
                )
        elif cls.class_attrs.get("has_probe_phase") is True and not any(
            "probe_phase" in c.methods for c in chain
        ):
            yield self.finding(
                module,
                cls.lineno,
                cls.col,
                f"{cls.name} sets has_probe_phase = True but neither it "
                "nor its bases override probe_phase; the probe phase "
                "would run the base no-op every cycle",
            )
        if (
            overrides_blocked
            or "periodic_check" in cls.methods
            or "probe_phase" in cls.methods
        ) and not self._defines(chain, "name"):
            yield self.finding(
                module,
                cls.lineno,
                cls.col,
                f"concrete detector {cls.name} does not define a name",
            )


# ----------------------------------------------------------------------
# PROTO002 — SimulationStats serialization consistency
# ----------------------------------------------------------------------
@register_rule
class StatsFieldsRule(Rule):
    code = "PROTO002"
    summary = "stats fields must stay consistent with to_dict/from_dict/PERF_FIELDS"
    hint = (
        "declare the field as an annotated dataclass field; to_dict/"
        "from_dict key strings and PERF_FIELDS entries must all name "
        "declared fields"
    )
    scopes = ()  # any class declaring PERF_FIELDS

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for cls in module.classes:
            if "PERF_FIELDS" not in cls.class_attrs:
                continue
            fields = set(cls.annotated_fields)
            yield from self._check_perf_fields(module, cls, fields)
            yield from self._check_serializers(module, cls, fields)

    def _check_perf_fields(
        self, module: ModuleInfo, cls: ClassSummary, fields: Set[str]
    ) -> Iterator[Finding]:
        for stmt in cls.node.body:
            if not (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "PERF_FIELDS"
                    for t in stmt.targets
                )
            ):
                continue
            if not isinstance(stmt.value, (ast.Tuple, ast.List)):
                continue
            for elt in stmt.value.elts:
                if (
                    isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                    and elt.value not in fields
                ):
                    yield self.finding(
                        module,
                        elt.lineno,
                        elt.col_offset,
                        f'PERF_FIELDS entry "{elt.value}" is not a '
                        f"declared field of {cls.name}",
                    )

    def _check_serializers(
        self, module: ModuleInfo, cls: ClassSummary, fields: Set[str]
    ) -> Iterator[Finding]:
        for stmt in cls.node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name not in ("to_dict", "from_dict"):
                continue
            for node in ast.walk(stmt):
                key: Optional[ast.Constant] = None
                if isinstance(node, ast.Subscript) and isinstance(
                    node.slice, ast.Constant
                ):
                    key = node.slice
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("pop", "get", "setdefault")
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                ):
                    key = node.args[0]
                if (
                    key is not None
                    and isinstance(key.value, str)
                    and key.value not in fields
                ):
                    yield self.finding(
                        module,
                        key.lineno,
                        key.col_offset,
                        f'{stmt.name} references "{key.value}", which is '
                        f"not a declared field of {cls.name}",
                    )
