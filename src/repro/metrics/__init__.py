"""Statistics collected by the simulator."""

from repro.metrics.stats import SimulationStats
from repro.metrics.timeseries import TimeSeriesCollector, WindowSample

__all__ = ["SimulationStats", "TimeSeriesCollector", "WindowSample"]
