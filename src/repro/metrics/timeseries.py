"""Windowed time-series collection.

The headline tables report end-of-run aggregates; transient behaviour
(saturation onset, recovery storms, post-deadlock throughput dips) needs
per-window series.  A :class:`TimeSeriesCollector` snapshots deltas of the
running statistics every ``window`` cycles, producing plain lists that
examples and tests can assert on without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.network.simulator import Simulator


@dataclass
class WindowSample:
    """Aggregates of one measurement window."""

    start_cycle: int
    end_cycle: int
    injected: int
    delivered: int
    flits_delivered: int
    detections: int
    recoveries: int
    blocked_headers: int
    in_network: int

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    def throughput(self, num_nodes: int) -> float:
        """Accepted flits/cycle/node inside this window."""
        if self.cycles == 0 or num_nodes == 0:
            return 0.0
        return self.flits_delivered / (self.cycles * num_nodes)


@dataclass
class TimeSeriesCollector:
    """Samples a simulator every ``window`` cycles.

    Drive it manually::

        collector = TimeSeriesCollector(window=100)
        while sim.cycle < limit:
            sim.step()
            collector.maybe_sample(sim)

    The collector is deliberately pull-based (no simulator hooks), so it
    can be attached to any running simulation without configuration.
    """

    window: int = 100
    samples: List[WindowSample] = field(default_factory=list)
    _last_cycle: int = 0
    _last_injected: int = 0
    _last_delivered: int = 0
    _last_flits: int = 0
    _last_detections: int = 0
    _last_recoveries: int = 0

    def maybe_sample(self, sim: "Simulator") -> bool:
        """Take a sample if a full window has elapsed; True when sampled."""
        if sim.cycle - self._last_cycle < self.window:
            return False
        self.sample(sim)
        return True

    def sample(self, sim: "Simulator") -> WindowSample:
        """Take a sample now, regardless of window alignment."""
        stats = sim.stats
        blocked = sum(1 for m in sim.pending_route if m.is_blocked())
        sample = WindowSample(
            start_cycle=self._last_cycle,
            end_cycle=sim.cycle,
            injected=stats.injected - self._last_injected,
            delivered=stats.delivered - self._last_delivered,
            flits_delivered=stats.flits_delivered - self._last_flits,
            detections=stats.detections - self._last_detections,
            recoveries=stats.recoveries - self._last_recoveries,
            blocked_headers=blocked,
            in_network=sim.message_count_in_network(),
        )
        self.samples.append(sample)
        self._last_cycle = sim.cycle
        self._last_injected = stats.injected
        self._last_delivered = stats.delivered
        self._last_flits = stats.flits_delivered
        self._last_detections = stats.detections
        self._last_recoveries = stats.recoveries
        return sample

    # ------------------------------------------------------------------
    # Series accessors
    # ------------------------------------------------------------------
    def throughput_series(self, num_nodes: int) -> List[float]:
        return [s.throughput(num_nodes) for s in self.samples]

    def detection_series(self) -> List[int]:
        return [s.detections for s in self.samples]

    def occupancy_series(self) -> List[int]:
        return [s.in_network for s in self.samples]

    def peak_blocked(self) -> int:
        if not self.samples:
            return 0
        return max(s.blocked_headers for s in self.samples)

    def steady_state_throughput(self, num_nodes: int, skip: int = 1) -> float:
        """Mean windowed throughput, skipping the first ``skip`` windows."""
        series = self.throughput_series(num_nodes)[skip:]
        if not series:
            return 0.0
        return sum(series) / len(series)
