"""Simulation statistics.

Counters come in two flavours: lifetime totals and ``*_measured`` values
restricted to the measurement window (after warmup, before drain).  The
paper's headline metric — *percentage of messages detected as possibly
deadlocked* — is ``detections_measured / injected_measured * 100``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.network.types import DetectionEvent


@dataclass
class SimulationStats:
    """All counters recorded by one simulation run."""

    # --- run shape -----------------------------------------------------
    cycles_run: int = 0
    warmup_cycles: int = 0
    measure_cycles: int = 0
    num_nodes: int = 0

    # --- message lifecycle ----------------------------------------------
    generated: int = 0
    generated_measured: int = 0
    injected: int = 0
    injected_measured: int = 0
    delivered: int = 0
    delivered_measured: int = 0
    flits_delivered: int = 0
    flits_delivered_measured: int = 0
    source_queue_drops: int = 0

    # --- deadlock handling ------------------------------------------------
    #: Detection events (a message can be re-detected after recovery).
    detections: int = 0
    detections_measured: int = 0
    #: Distinct messages detected at least once (the tables' numerator).
    messages_detected: int = 0
    messages_detected_measured: int = 0
    #: Detections confirmed by the ground-truth analyzer as true deadlock.
    true_detections: int = 0
    #: Detections the analyzer classified as false deadlock.
    false_detections: int = 0
    #: Detections raised while the analyzer was disabled.
    unclassified_detections: int = 0
    recoveries: int = 0
    recoveries_measured: int = 0
    aborts: int = 0
    aborts_measured: int = 0

    # --- ground-truth sweeps ------------------------------------------------
    truth_sweeps: int = 0
    truth_sweeps_with_deadlock: int = 0
    max_deadlock_set_size: int = 0
    #: Distinct messages ever observed inside a true deadlock.
    truly_deadlocked_messages: int = 0

    # --- latency ----------------------------------------------------------
    latency_sum: int = 0  # generation -> delivery, measured deliveries only
    network_latency_sum: int = 0  # injection -> delivery
    latency_count: int = 0
    max_latency: int = 0

    # --- fault injection / conformance --------------------------------------
    #: Fault-schedule edges applied (link windows, stuck lanes, counter
    #: faults; see repro.faults).  Zero on healthy runs.
    fault_edges: int = 0
    #: Conformance accounting against the per-cycle ground-truth oracle
    #: (filled by repro.faults.conformance; zero outside the harness).
    #: Detection events raised while the message was truly deadlocked.
    oracle_true_positive_events: int = 0
    #: Detection events raised while the message was *not* deadlocked.
    oracle_false_positive_events: int = 0
    #: Messages still truly deadlocked at the end of the run that no
    #: detector ever marked (the harness's false-negative count).
    oracle_missed_messages: int = 0
    #: Detection latency (cycles from entering the oracle's deadlocked
    #: set to the detection event), summed / counted / maxed over true
    #: positives.
    oracle_latency_sum: int = 0
    oracle_latency_count: int = 0
    oracle_latency_max: int = 0

    # --- probe transport (probe-family detectors; zero otherwise) ----------
    # Behavioural, not telemetry: the probe transport is deterministic and
    # engine-agnostic, so these participate in engine-equivalence digests.
    #: Probe sessions launched (including dead-end self-detections).
    probe_launches: int = 0
    #: Total probe hops taken across all sessions.
    probe_hops: int = 0
    #: Detections from a probe returning to its initiator (wait cycle).
    probe_cycle_detections: int = 0
    #: Detections from a launch finding no usable lane at all (fault-wedged).
    probe_deadend_detections: int = 0
    #: Probes dropped because their current message could still advance.
    probe_dropped_progress: int = 0
    #: Probes dropped by per-initiator visited-set / path-digest dedupe.
    probe_dropped_dedupe: int = 0
    #: Probes dropped by lowest-id root election.
    probe_dropped_election: int = 0
    #: Probes dropped at the max_hops path-length cap.
    probe_dropped_hops: int = 0
    #: Probes dropped at the max_outstanding storm guard.
    probe_dropped_overflow: int = 0
    #: Peak probes simultaneously in flight for any single initiator.
    probe_peak_outstanding: int = 0

    # --- event log ----------------------------------------------------------
    detection_events: List[DetectionEvent] = field(default_factory=list)

    # --- engine telemetry ---------------------------------------------------
    # Wall-clock and work counters of the simulation engine itself.  These
    # describe *how* the run was computed, not what it simulated: they
    # legitimately differ between the event-driven and reference engines
    # (and across hosts), so equivalence checks compare
    # ``to_dict(include_perf=False)``.
    #: Engine that produced the run ("event" or "scan").
    engine: str = ""
    #: Wall-clock seconds per simulation phase (routing, movement, ...).
    phase_time: Dict[str, float] = field(default_factory=dict)
    #: Engine work counters: routing attempts vs parked skips, movement
    #: visits vs parked skips, parks and deadline wakeups.
    engine_counters: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    #: Field names describing engine execution rather than simulated
    #: behaviour (see the "engine telemetry" section above).
    PERF_FIELDS = ("engine", "phase_time", "engine_counters")

    def to_dict(
        self, include_events: bool = True, include_perf: bool = True
    ) -> Dict[str, Any]:
        """JSON-serializable form of every counter.

        Set ``include_events=False`` to drop the (potentially large)
        per-detection event log; all derived metrics except
        :meth:`false_detection_percentage` work on the reloaded stats.
        The campaign executor uses this lean form to ship results across
        process boundaries.  ``include_perf=False`` additionally drops
        the engine telemetry, leaving exactly the simulated behaviour —
        the form compared by the engine-equivalence tests.
        """
        payload = dataclasses.asdict(self)
        if not include_events:
            del payload["detection_events"]
        if not include_perf:
            for name in self.PERF_FIELDS:
                del payload[name]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimulationStats":
        """Inverse of :meth:`to_dict` (missing event log -> empty)."""
        data = dict(payload)
        events = [
            DetectionEvent(**e) for e in data.pop("detection_events", [])
        ]
        return cls(detection_events=events, **data)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def detection_percentage(self) -> float:
        """The paper's metric: % of injected messages marked as deadlocked.

        Counts distinct messages (first detections), matching "percentage
        of messages detected as possibly deadlocked" in the table captions.
        """
        if self.injected_measured == 0:
            return 0.0
        return 100.0 * self.messages_detected_measured / self.injected_measured

    def false_detection_percentage(self) -> float:
        """% of injected messages marked although not truly deadlocked."""
        if self.injected_measured == 0:
            return 0.0
        false_measured = sum(
            1
            for e in self.detection_events
            if e.truly_deadlocked is False and e.cycle >= self.warmup_cycles
        )
        return 100.0 * false_measured / self.injected_measured

    def oracle_mean_latency(self) -> Optional[float]:
        """Mean true-positive detection latency (conformance runs only)."""
        if self.oracle_latency_count == 0:
            return None
        return self.oracle_latency_sum / self.oracle_latency_count

    def fault_conformance(self) -> Dict[str, Any]:
        """The conformance harness's per-run verdict as a plain dict."""
        return {
            "fault_edges": self.fault_edges,
            "true_positives": self.oracle_true_positive_events,
            "false_positives": self.oracle_false_positive_events,
            "missed": self.oracle_missed_messages,
            "latency_mean": self.oracle_mean_latency(),
            "latency_max": self.oracle_latency_max,
            "latency_sum": self.oracle_latency_sum,
            "latency_count": self.oracle_latency_count,
        }

    def had_true_deadlock(self) -> bool:
        """Whether any real deadlock occurred (the tables' ``(*)`` marks)."""
        return self.true_detections > 0 or self.truth_sweeps_with_deadlock > 0

    def throughput(self) -> float:
        """Accepted traffic in flits/cycle/node over the measured window."""
        if self.measure_cycles == 0 or self.num_nodes == 0:
            return 0.0
        return self.flits_delivered_measured / (
            self.measure_cycles * self.num_nodes
        )

    def average_latency(self) -> Optional[float]:
        """Mean generation-to-delivery latency of measured deliveries."""
        if self.latency_count == 0:
            return None
        return self.latency_sum / self.latency_count

    def average_network_latency(self) -> Optional[float]:
        """Mean injection-to-delivery latency of measured deliveries."""
        if self.latency_count == 0:
            return None
        return self.network_latency_sum / self.latency_count

    def summary(self) -> str:
        """Multi-line human-readable digest (used by examples)."""
        lat = self.average_latency()
        lines = [
            f"cycles run            : {self.cycles_run} "
            f"(warmup {self.warmup_cycles}, measured {self.measure_cycles})",
            f"messages injected     : {self.injected_measured} (measured) / "
            f"{self.injected} (total)",
            f"messages delivered    : {self.delivered_measured} (measured) / "
            f"{self.delivered} (total)",
            f"throughput            : {self.throughput():.4f} flits/cycle/node",
            f"avg latency           : "
            + (f"{lat:.1f} cycles" if lat is not None else "n/a"),
            f"deadlock detections   : {self.messages_detected_measured} msgs / "
            f"{self.detections_measured} events "
            f"({self.detection_percentage():.3f}% of injected)",
            f"  true / false / n.c. : {self.true_detections} / "
            f"{self.false_detections} / {self.unclassified_detections}",
            f"recoveries / aborts   : {self.recoveries} / {self.aborts}",
            f"true-deadlock sweeps  : {self.truth_sweeps_with_deadlock} / "
            f"{self.truth_sweeps}",
        ]
        return "\n".join(lines)
