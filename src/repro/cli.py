"""The ``repro`` umbrella command.

Subcommands are thin wrappers around the per-package CLIs::

    repro lint [paths...]        static analysis (repro.lint)
    repro faults conformance     detector conformance under faults (repro.faults)
    repro verify run             exhaustive small-network verifier (repro.verify)
    repro experiments ...        table campaigns (repro.experiments)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.faults.cli import build_parser as build_faults_parser
from repro.lint.cli import build_parser as build_lint_parser
from repro.verify.cli import build_parser as build_verify_parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wormhole deadlock-detection reproduction toolkit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    build_lint_parser(
        sub.add_parser(
            "lint",
            help="determinism & protocol static analysis",
            description="Determinism & protocol static analysis for repro.",
        )
    )
    build_faults_parser(
        sub.add_parser(
            "faults",
            help="fault-injection conformance harness",
            description="Fault-injection conformance harness.",
        )
    )
    build_verify_parser(
        sub.add_parser(
            "verify",
            help="exhaustive state-space verifier for small networks",
            description="Exhaustive state-space verifier for small networks.",
        )
    )
    sub.add_parser(
        "experiments",
        help="run the paper's table campaigns (alias of repro-experiments)",
        add_help=False,
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args_list = list(sys.argv[1:] if argv is None else argv)
    # "experiments" forwards everything verbatim to the existing CLI, so
    # its rich option surface stays defined in exactly one place.
    if args_list[:1] == ["experiments"]:
        from repro.experiments.cli import main as experiments_main

        result = experiments_main(args_list[1:])
        return int(result) if result is not None else 0
    args = build_parser().parse_args(args_list)
    result = args.func(args)
    return int(result) if result is not None else 0


if __name__ == "__main__":  # pragma: no cover - console-script entry
    raise SystemExit(main())
