"""Runtime fault application: compiled schedules driving channel state.

The :class:`FaultInjector` compiles a list of :class:`FaultSpec` windows
into per-cycle *edge* operations and applies them at the start of every
simulator cycle, before any phase reads channel state.  All effects are
expressed through four fields on :class:`PhysicalChannel` —
``fault_down`` / ``stuck_mask`` / ``usable_mask`` for availability and
``counter_lag`` for the counter faults — so the simulation phases stay
oblivious to *why* a lane is unusable.

Determinism contract: edges fire in spec order within a cycle, mutate only
integer channel state, and draw nothing from any RNG; a schedule is part
of the config hash, so (config, seed, schedule) fully determines the run
on both engines.  Every edge cycle ends with
:meth:`Simulator.wake_all_parked` — a fault appearing or healing
invalidates the event engine's parking proofs (a parked header's feasible
set may have gained a usable lane, a wedged worm may be able to drain), so
all parked state conservatively re-evaluates.  Edges are rare, making the
O(active messages) wake cost negligible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.faults.spec import FaultSpec
from repro.network.channel import PhysicalChannel

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.network.simulator import Simulator

#: Edge op codes: (code, channel, arg) applied at one cycle.
_DOWN_ON = 0
_DOWN_OFF = 1
_STUCK_ON = 2
_STUCK_OFF = 3
_LAG = 4
_FREEZE_ON = 5
_FREEZE_OFF = 6

_OP_NAMES = {
    _DOWN_ON: "link-down",
    _DOWN_OFF: "link-up",
    _STUCK_ON: "vc-stuck",
    _STUCK_OFF: "vc-unstuck",
    _LAG: "counter-lag",
    _FREEZE_ON: "counter-freeze",
    _FREEZE_OFF: "counter-thaw",
}

_Op = Tuple[int, PhysicalChannel, int]


class FaultInjector:
    """Applies a compiled fault schedule to one simulator instance."""

    def __init__(self, sim: "Simulator", specs: Sequence[FaultSpec]) -> None:
        self.sim = sim
        self.specs = tuple(specs)
        #: cycle -> edge ops, in spec order (insertion order is spec order).
        self._edges: Dict[int, List[_Op]] = {}
        #: Active counter-freeze windows: (channel, start, end).
        self._freezes: List[Tuple[PhysicalChannel, int, int]] = []
        #: Overlapping-window refcounts, keyed by channel index (and lane).
        self._down_refs: Dict[int, int] = {}
        self._stuck_refs: Dict[Tuple[int, int], int] = {}
        for spec in self.specs:
            spec.validate()
            self._compile(spec)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile(self, spec: FaultSpec) -> None:
        channels = self.sim.channels
        if spec.kind == "router-stall":
            node = spec.node
            assert node is not None
            if node >= len(self.sim.routers):
                raise ValueError(
                    f"router-stall fault targets node {node}, but the "
                    f"network has {len(self.sim.routers)} nodes"
                )
            router = self.sim.routers[node]
            # A stalled crossbar switches nothing: everything the router
            # drives goes dark, and its injection ports accept nothing.
            # Upstream links into the router keep transmitting (their
            # buffers live in this router and simply fill up).
            targets = (
                list(router.output_pc_list)
                + list(router.ejection_pcs)
                + list(router.injection_pcs)
            )
            for pc in targets:
                self._push(spec.start, (_DOWN_ON, pc, 0))
                self._push(spec.end, (_DOWN_OFF, pc, 0))
            return
        channel = spec.channel
        assert channel is not None
        if channel >= len(channels):
            raise ValueError(
                f"{spec.kind} fault targets channel {channel}, but the "
                f"network has {len(channels)} channels"
            )
        pc = channels[channel]
        if spec.kind == "link-down":
            self._push(spec.start, (_DOWN_ON, pc, 0))
            self._push(spec.end, (_DOWN_OFF, pc, 0))
        elif spec.kind == "vc-stuck":
            lane = spec.lane
            assert lane is not None
            if lane >= len(pc.vcs):
                raise ValueError(
                    f"vc-stuck fault targets lane {lane} of channel "
                    f"{channel}, which has {len(pc.vcs)} lanes"
                )
            self._push(spec.start, (_STUCK_ON, pc, lane))
            self._push(spec.end, (_STUCK_OFF, pc, lane))
        elif spec.kind == "counter-lag":
            self._push(spec.start, (_LAG, pc, spec.lag))
        else:  # counter-freeze
            self._push(spec.start, (_FREEZE_ON, pc, 0))
            self._push(spec.end, (_FREEZE_OFF, pc, 0))
            self._freezes.append((pc, spec.start, spec.end))

    def _push(self, cycle: int, op: _Op) -> None:
        self._edges.setdefault(cycle, []).append(op)

    # ------------------------------------------------------------------
    # Per-cycle application
    # ------------------------------------------------------------------
    def apply(self, cycle: int) -> None:
        """Apply this cycle's fault edges (called at the top of ``step``)."""
        # Counter-freeze upkeep: while a window covers an *occupied*
        # channel, the lag grows one cycle per cycle so the reading holds
        # at its window-start value (a flit reset zeroes both and the
        # reading then freezes at zero).  Strictly-inside test: the
        # reading is natural at ``start`` and resumes advancing at ``end``.
        for pc, start, end in self._freezes:
            if start < cycle < end and pc.occupied_count > 0:
                pc.counter_lag += 1
        ops = self._edges.get(cycle)
        if not ops:
            return
        sim = self.sim
        tracer = sim.tracer
        for code, pc, arg in ops:
            if code == _DOWN_ON:
                refs = self._down_refs.get(pc.index, 0) + 1
                self._down_refs[pc.index] = refs
                if refs == 1:
                    pc.fault_down = True
                    pc.recompute_usable()
            elif code == _DOWN_OFF:
                refs = self._down_refs.get(pc.index, 0) - 1
                self._down_refs[pc.index] = refs
                if refs == 0:
                    pc.fault_down = False
                    pc.recompute_usable()
            elif code == _STUCK_ON:
                key = (pc.index, arg)
                refs = self._stuck_refs.get(key, 0) + 1
                self._stuck_refs[key] = refs
                if refs == 1:
                    pc.stuck_mask |= 1 << arg
                    pc.recompute_usable()
            elif code == _STUCK_OFF:
                key = (pc.index, arg)
                refs = self._stuck_refs.get(key, 0) - 1
                self._stuck_refs[key] = refs
                if refs == 0:
                    pc.stuck_mask &= ~(1 << arg)
                    pc.recompute_usable()
            elif code == _LAG:
                pc.counter_lag += arg
            # _FREEZE_ON / _FREEZE_OFF mutate nothing here: the upkeep
            # loop above carries the window; the edge exists for tracing
            # and for waking parked state at the thaw boundary.
            sim.stats.fault_edges += 1
            if tracer is not None:
                tracer.record(
                    ("fault", cycle, -1, pc.index, _OP_NAMES[code], arg)
                )
        # Any edge invalidates parking proofs (see module docstring).
        sim.wake_all_parked()
