"""Closed-loop threshold tuning against the conformance oracle.

Drives an :class:`~repro.core.adaptive.AdaptiveThresholdController`
between campaign cells: each proposed threshold is evaluated by grading
the controller's detector mechanism over a set of fault schedules with
the conformance harness, and the resulting oracle verdict (FP / missed /
latency) is fed back as the rung's cost.  ``repro faults tune`` exposes
the loop on the command line; the experiments record convergence against
the exhaustive best fixed threshold per traffic regime.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.adaptive import AdaptiveThresholdController
from repro.faults.conformance import graded_run, make_cases
from repro.network.config import SimulationConfig


def evaluate_threshold(
    base_config: SimulationConfig,
    mechanism: str,
    cases: Sequence[Dict[str, Any]],
    threshold: int,
    engine: str = "event",
) -> Dict[str, Any]:
    """Accumulated conformance verdict for one (mechanism, threshold) cell.

    Runs every fault schedule in ``cases`` once and sums the oracle
    counters into a single ``fault_conformance``-shaped dict, which both
    the controller (:meth:`observe`) and the exhaustive baseline consume.
    """
    totals: Dict[str, Any] = {
        "fault_edges": 0,
        "true_positives": 0,
        "false_positives": 0,
        "missed": 0,
        "latency_sum": 0,
        "latency_count": 0,
        "latency_max": 0,
    }
    for case in cases:
        config = base_config.replace(
            seed=case["seed"],
            engine=engine,
            faults=[dict(f) for f in case["faults"]],
        )
        config.detector.mechanism = mechanism
        config.detector.threshold = threshold
        stats, _ = graded_run(config)
        conf = stats.fault_conformance()
        for key in (
            "fault_edges",
            "true_positives",
            "false_positives",
            "missed",
            "latency_sum",
            "latency_count",
        ):
            totals[key] += conf[key]
        if conf["latency_max"] > totals["latency_max"]:
            totals["latency_max"] = conf["latency_max"]
    totals["latency_mean"] = (
        totals["latency_sum"] / totals["latency_count"]
        if totals["latency_count"]
        else None
    )
    return totals


def tune(
    controller: AdaptiveThresholdController,
    base_config: SimulationConfig,
    cases: Optional[Sequence[Dict[str, Any]]] = None,
    num_schedules: int = 3,
    base_seed: int = 0,
    max_evaluations: int = 12,
    engine: str = "event",
) -> Dict[str, Any]:
    """Run the control loop until convergence or the evaluation budget.

    Returns a JSON-ready report: the evaluation trace, the controller
    summary and the threshold it settled on.  The controller keeps its
    accumulated state, so calling ``tune`` again with a second traffic
    regime continues refining the same ladder.
    """
    if cases is None:
        cases = make_cases(base_config, num_schedules, base_seed=base_seed)
    trace: List[Dict[str, Any]] = []
    evaluations = 0
    while evaluations < max_evaluations:
        threshold = controller.propose()
        if threshold is None:
            break
        verdict = evaluate_threshold(
            base_config, controller.mechanism, cases, threshold, engine=engine
        )
        controller.observe(threshold, verdict)
        evaluations += 1
        trace.append(
            {
                "threshold": threshold,
                "cost": controller.cost(threshold),
                **verdict,
            }
        )
    return {
        "mechanism": controller.mechanism,
        "evaluations": evaluations,
        "trace": trace,
        "controller": controller.summary(),
        "tuned_threshold": controller.best_threshold(),
    }


def exhaustive_best(
    base_config: SimulationConfig,
    mechanism: str,
    ladder: Sequence[int],
    cases: Sequence[Dict[str, Any]],
    controller: Optional[AdaptiveThresholdController] = None,
    engine: str = "event",
) -> Dict[str, Any]:
    """Cost of every ladder rung (the fixed-threshold baseline).

    Scores each rung with a throwaway controller carrying the same cost
    weights as ``controller`` (or defaults), so "best fixed threshold"
    and the adaptive walk optimize the identical objective.
    """
    scorer = AdaptiveThresholdController(
        ladder=ladder,
        fp_weight=controller.fp_weight if controller else 1.0,
        miss_weight=controller.miss_weight if controller else 100.0,
        latency_weight=controller.latency_weight if controller else 0.05,
    )
    scorer.mechanism = mechanism
    costs: Dict[int, float] = {}
    verdicts: Dict[int, Dict[str, Any]] = {}
    for rung in ladder:
        verdict = evaluate_threshold(
            base_config, mechanism, cases, rung, engine=engine
        )
        scorer.observe(rung, verdict)
        cost = scorer.cost(rung)
        assert cost is not None
        costs[rung] = cost
        verdicts[rung] = verdict
    best = min(costs, key=lambda rung: (costs[rung], rung))
    return {
        "mechanism": mechanism,
        "ladder": list(ladder),
        "costs": {str(rung): costs[rung] for rung in ladder},
        "verdicts": {str(rung): verdicts[rung] for rung in ladder},
        "best_threshold": best,
    }
