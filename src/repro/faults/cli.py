"""Command-line entry point: ``repro faults`` / ``python -m repro.faults``.

``repro faults conformance`` runs the ground-truth conformance harness:
every requested detector against every generated fault schedule, under
both simulation engines, asserting bit-identical behaviour per schedule
and reporting false positives / false negatives / detection latency per
detector (see docs/faults.md).  Exits non-zero if any engine pair
diverges, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.faults.conformance import (
    DEFAULT_DETECTORS,
    make_cases,
    quick_base_config,
    render_report,
    run_conformance,
)


def build_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Configure the faults options (reused by the ``repro`` umbrella CLI)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro faults",
            description="Fault-injection conformance harness.",
        )
    sub = parser.add_subparsers(dest="faults_command", required=True)
    conf = sub.add_parser(
        "conformance",
        help="grade detectors against the ground-truth oracle under faults",
        description=(
            "Run every detector on seeded fault schedules under both "
            "engines; report FP/FN/latency and check digest equality."
        ),
    )
    conf.add_argument(
        "--quick",
        action="store_true",
        help="use the quick 4x4 regime and 3 schedules (CI profile)",
    )
    conf.add_argument(
        "--schedules",
        type=int,
        default=None,
        help="number of fault schedules (default: 3 quick, 5 otherwise)",
    )
    conf.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed for schedule generation (default: 0)",
    )
    conf.add_argument(
        "--detectors",
        default=",".join(DEFAULT_DETECTORS),
        help="comma-separated detector list (default: %(default)s)",
    )
    conf.add_argument(
        "--out",
        default=None,
        help="write the full JSON report to this path",
    )
    conf.add_argument(
        "--cache-dir",
        default=None,
        help="campaign result cache directory (reuses prior runs)",
    )
    conf.add_argument(
        "--manifest",
        default=None,
        help="append cells to this campaign manifest (jsonl)",
    )
    conf.set_defaults(func=run)
    return parser


def run(args: argparse.Namespace) -> int:
    base = quick_base_config()
    if not args.quick:
        # The full profile keeps the quick topology but grades a longer
        # window, so rare late heals and drains get exercised too.
        base.measure_cycles = 1000
        base.drain_cycles = 1500
    num_schedules = args.schedules
    if num_schedules is None:
        num_schedules = 3 if args.quick else 5
    if num_schedules < 1:
        raise SystemExit("--schedules must be >= 1")
    detectors = [d.strip() for d in args.detectors.split(",") if d.strip()]
    cases = make_cases(base, num_schedules, base_seed=args.seed)
    report = run_conformance(
        base_config=base,
        cases=cases,
        detectors=detectors,
        cache_dir=args.cache_dir,
        manifest_path=args.manifest,
    )
    print(render_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.out}")
    if not report["engines_match"]:
        print("FAIL: scan/event digests diverged on at least one schedule")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
