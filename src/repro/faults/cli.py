"""Command-line entry point: ``repro faults`` / ``python -m repro.faults``.

``repro faults conformance`` runs the ground-truth conformance harness:
every requested detector against every generated fault schedule, under
both simulation engines, asserting bit-identical behaviour per schedule
and reporting false positives / false negatives / detection latency per
detector (see docs/faults.md).  Exits non-zero if any engine pair
diverges, so CI can gate on it directly.

``repro faults tune`` drives an adaptive threshold controller
(:mod:`repro.core.adaptive`) in closed loop against the same oracle:
propose a threshold, grade it over the fault schedules, feed the verdict
back, repeat until the controller converges; optionally sweep the whole
ladder exhaustively to report how far the adaptive walk landed from the
best fixed threshold.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.faults.conformance import (
    DEFAULT_DETECTORS,
    make_cases,
    quick_base_config,
    render_report,
    run_conformance,
)


def parse_detectors(spec: str) -> List[str]:
    """Split and validate a comma-separated detector list.

    Every name must be a registered mechanism (``detector_names()``);
    unknown names abort with the valid choices instead of failing deep
    inside the harness with a half-finished report.
    """
    from repro.core.registry import detector_names

    detectors = [d.strip() for d in spec.split(",") if d.strip()]
    if not detectors:
        raise SystemExit("--detectors must name at least one detector")
    valid = detector_names()
    unknown = [d for d in detectors if d not in valid]
    if unknown:
        raise SystemExit(
            f"unknown detector(s) {', '.join(sorted(unknown))}; "
            f"choose from {', '.join(valid)}"
        )
    return detectors


def build_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Configure the faults options (reused by the ``repro`` umbrella CLI)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro faults",
            description="Fault-injection conformance harness.",
        )
    sub = parser.add_subparsers(dest="faults_command", required=True)
    conf = sub.add_parser(
        "conformance",
        help="grade detectors against the ground-truth oracle under faults",
        description=(
            "Run every detector on seeded fault schedules under both "
            "engines; report FP/FN/latency and check digest equality."
        ),
    )
    conf.add_argument(
        "--quick",
        action="store_true",
        help="use the quick 4x4 regime and 3 schedules (CI profile)",
    )
    conf.add_argument(
        "--schedules",
        type=int,
        default=None,
        help="number of fault schedules (default: 3 quick, 5 otherwise)",
    )
    conf.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed for schedule generation (default: 0)",
    )
    conf.add_argument(
        "--detectors",
        default=",".join(DEFAULT_DETECTORS),
        help="comma-separated detector list (default: %(default)s)",
    )
    conf.add_argument(
        "--out",
        default=None,
        help="write the full JSON report to this path",
    )
    conf.add_argument(
        "--cache-dir",
        default=None,
        help="campaign result cache directory (reuses prior runs)",
    )
    conf.add_argument(
        "--manifest",
        default=None,
        help="append cells to this campaign manifest (jsonl)",
    )
    conf.set_defaults(func=run)

    tune = sub.add_parser(
        "tune",
        help="adaptively tune a detector threshold against the oracle",
        description=(
            "Closed-loop threshold tuning: the controller proposes ladder "
            "rungs, each is graded over the fault schedules, and the "
            "oracle verdict drives the next proposal until convergence."
        ),
    )
    tune.add_argument(
        "--mechanism",
        default="probe",
        help="detector family to tune: probe or timeout (default: probe)",
    )
    tune.add_argument(
        "--ladder",
        default=None,
        help="comma-separated threshold ladder (default: 4,8,16,32,64,128)",
    )
    tune.add_argument(
        "--schedules",
        type=int,
        default=3,
        help="fault schedules per evaluation (default: 3)",
    )
    tune.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed for schedule generation (default: 0)",
    )
    tune.add_argument(
        "--max-evaluations",
        type=int,
        default=12,
        help="evaluation budget for the adaptive walk (default: 12)",
    )
    tune.add_argument(
        "--exhaustive",
        action="store_true",
        help="also sweep every ladder rung and report the best fixed "
        "threshold next to the adaptive result",
    )
    tune.add_argument(
        "--out",
        default=None,
        help="write the full JSON report to this path",
    )
    tune.set_defaults(func=run_tune)
    return parser


def run(args: argparse.Namespace) -> int:
    base = quick_base_config()
    if not args.quick:
        # The full profile keeps the quick topology but grades a longer
        # window, so rare late heals and drains get exercised too.
        base.measure_cycles = 1000
        base.drain_cycles = 1500
    num_schedules = args.schedules
    if num_schedules is None:
        num_schedules = 3 if args.quick else 5
    if num_schedules < 1:
        raise SystemExit("--schedules must be >= 1")
    detectors = parse_detectors(args.detectors)
    cases = make_cases(base, num_schedules, base_seed=args.seed)
    report = run_conformance(
        base_config=base,
        cases=cases,
        detectors=detectors,
        cache_dir=args.cache_dir,
        manifest_path=args.manifest,
    )
    print(render_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.out}")
    if not report["engines_match"]:
        print("FAIL: scan/event digests diverged on at least one schedule")
        return 1
    return 0


def run_tune(args: argparse.Namespace) -> int:
    # Leaf imports, like the harness itself: the tuning loop pulls in the
    # conformance machinery, which plain ``conformance`` CLI calls already
    # pay for but bare ``--help`` should not.
    from repro.core.adaptive import CONTROLLERS, DEFAULT_LADDER
    from repro.faults.adaptive import exhaustive_best, tune

    controller_cls = CONTROLLERS.get(args.mechanism)
    if controller_cls is None:
        raise SystemExit(
            f"unknown mechanism {args.mechanism!r}; "
            f"choose from {', '.join(sorted(CONTROLLERS))}"
        )
    ladder = DEFAULT_LADDER
    if args.ladder:
        try:
            parsed = tuple(
                int(r.strip()) for r in args.ladder.split(",") if r.strip()
            )
        except ValueError:
            raise SystemExit(f"--ladder must be integers, got {args.ladder!r}")
        ladder = parsed
    if args.schedules < 1:
        raise SystemExit("--schedules must be >= 1")
    base = quick_base_config()
    cases = make_cases(base, args.schedules, base_seed=args.seed)
    controller = controller_cls(ladder=ladder)
    report = tune(
        controller,
        base,
        cases=cases,
        max_evaluations=args.max_evaluations,
    )
    print(
        f"adaptive {args.mechanism}: tuned threshold "
        f"{report['tuned_threshold']} after {report['evaluations']} "
        f"evaluations (converged: {report['controller']['converged']})"
    )
    for step in report["trace"]:
        print(
            f"  t={step['threshold']:<5} cost={step['cost']:.3f} "
            f"tp={step['true_positives']} fp={step['false_positives']} "
            f"missed={step['missed']}"
        )
    if args.exhaustive:
        sweep = exhaustive_best(
            base, args.mechanism, ladder, cases, controller=controller
        )
        report["exhaustive"] = sweep
        print(
            f"exhaustive best fixed threshold: {sweep['best_threshold']} "
            f"(adaptive landed on {report['tuned_threshold']})"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = args.func
    result: int = handler(args)
    return result


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
