"""``python -m repro.faults`` — see :mod:`repro.faults.cli`."""

from repro.faults.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
