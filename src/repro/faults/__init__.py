"""Deterministic fault injection for the wormhole simulator.

Schedules are lists of :class:`~repro.faults.spec.FaultSpec` windows
(JSON-safe dicts inside ``SimulationConfig.faults``); the
:class:`~repro.faults.injector.FaultInjector` applies them cycle by cycle
on both engines.  The conformance harness that grades detectors against
the ground-truth oracle under these schedules lives in
:mod:`repro.faults.conformance` (imported lazily here to keep the
simulator -> injector import path cycle-free).
"""

from repro.faults.injector import FaultInjector
from repro.faults.spec import FAULT_KINDS, FaultSpec, random_faults

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultInjector", "random_faults"]
