"""Fault specifications: the schedule language of the fault subsystem.

A fault schedule is a plain list of :class:`FaultSpec` entries (stored in
``SimulationConfig.faults`` as JSON-safe dicts, so schedules participate in
config hashing, campaign caching and provenance for free).  Every fault is
a half-open cycle window ``[start, end)`` on one target:

* ``link-down`` — no flit may cross physical channel ``channel`` and no
  lane of it may be allocated while the window is active; flits already
  buffered past the link still drain through downstream crossbars.
* ``vc-stuck`` — lane ``lane`` of channel ``channel`` neither accepts nor
  releases flits and cannot be allocated; the other lanes keep working.
* ``router-stall`` — node ``node``'s crossbar stops switching: compiled
  into ``link-down`` windows on every channel the router drives (network
  outputs, ejection ports) plus its injection ports.
* ``counter-freeze`` — the inactivity counter of channel ``channel`` holds
  its reading for the window (the hardware gates the increment); a flit
  reset still clears it to zero.
* ``counter-lag`` — at ``start`` the counter of channel ``channel`` is set
  back by ``lag`` cycles (a delayed counter); the next flit reset clears
  the lag.

Windows on the same target compose by refcount: a channel is down while
*any* covering ``link-down`` window is active.  Both counter faults can
only move detector threshold crossings *later*, never earlier, which is
what keeps the event engine's cached wake deadlines sound (they are lower
bounds; see ``PhysicalChannel.inactivity_deadline``).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

#: Recognized fault kinds, in documentation order.
FAULT_KINDS = (
    "link-down",
    "vc-stuck",
    "router-stall",
    "counter-freeze",
    "counter-lag",
)

#: Kinds addressing one physical channel via ``channel``.
_CHANNEL_KINDS = ("link-down", "vc-stuck", "counter-freeze", "counter-lag")


@dataclass(frozen=True)
class FaultSpec:
    """One fault window (see module docstring for per-kind semantics).

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        start: first cycle the fault is active.
        end: first cycle after the window (half-open, ``end > start``).
        channel: target physical-channel index (channel-addressed kinds).
        lane: target virtual-channel index (``vc-stuck`` only).
        node: target node id (``router-stall`` only).
        lag: cycles the counter is set back (``counter-lag`` only).
    """

    kind: str
    start: int
    end: int
    channel: Optional[int] = None
    lane: Optional[int] = None
    node: Optional[int] = None
    lag: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on a malformed spec (topology-independent)."""
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose one of {FAULT_KINDS}"
            )
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"fault window must satisfy 0 <= start < end, got "
                f"[{self.start}, {self.end})"
            )
        if self.kind in _CHANNEL_KINDS:
            if self.channel is None or self.channel < 0:
                raise ValueError(f"{self.kind} fault needs a channel index >= 0")
        if self.kind == "vc-stuck" and (self.lane is None or self.lane < 0):
            raise ValueError("vc-stuck fault needs a lane index >= 0")
        if self.kind == "router-stall" and (self.node is None or self.node < 0):
            raise ValueError("router-stall fault needs a node id >= 0")
        if self.kind == "counter-lag" and self.lag < 1:
            raise ValueError("counter-lag fault needs lag >= 1")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (the shape stored in config ``faults``)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`to_dict`; validates the rebuilt spec."""
        spec = cls(**payload)
        spec.validate()
        return spec


def validate_fault_dicts(payloads: Sequence[Dict[str, Any]]) -> None:
    """Validate a config's raw ``faults`` list (shape only, no topology)."""
    for payload in payloads:
        if not isinstance(payload, dict):
            raise ValueError(f"fault entries must be dicts, got {payload!r}")
        FaultSpec.from_dict(payload)


def random_faults(
    seed: int,
    num_channels: int,
    num_nodes: int,
    num_vcs: int,
    horizon: int,
    count: int = 4,
    kinds: Sequence[str] = FAULT_KINDS,
    max_window: int = 200,
    max_lag: int = 32,
) -> List[Dict[str, Any]]:
    """A deterministic pseudo-random fault schedule (dict form).

    Used by the conformance harness and the property tests to explore the
    schedule space reproducibly: the same arguments always produce the
    same schedule, via a private ``random.Random(seed)`` stream that never
    touches the simulation RNG.
    """
    if num_channels < 1 or num_nodes < 1 or num_vcs < 1 or horizon < 2:
        raise ValueError("random_faults needs a non-trivial network and horizon")
    rng = random.Random(seed)
    faults: List[Dict[str, Any]] = []
    for _ in range(count):
        kind = rng.choice(list(kinds))
        start = rng.randrange(0, horizon - 1)
        length = rng.randrange(1, max_window + 1)
        end = min(start + length, horizon)
        spec = FaultSpec(
            kind=kind,
            start=start,
            end=end,
            channel=(
                rng.randrange(num_channels) if kind in _CHANNEL_KINDS else None
            ),
            lane=rng.randrange(num_vcs) if kind == "vc-stuck" else None,
            node=rng.randrange(num_nodes) if kind == "router-stall" else None,
            lag=rng.randrange(1, max_lag + 1) if kind == "counter-lag" else 0,
        )
        spec.validate()
        faults.append(spec.to_dict())
    return faults
