"""Conformance harness: detectors vs. the ground-truth oracle under faults.

For every (fault schedule, detector, engine) combination the harness runs
one simulation, sweeping the fault-aware wait-graph oracle
(:func:`repro.analysis.deadlock.find_deadlocked` with ``honor_faults``)
after every cycle, and grades the detector's events against it:

* **true positive** — a detection event raised while the simulator's
  in-situ oracle classified the message as truly deadlocked
  (``DetectionEvent.truly_deadlocked``);
* **false positive** — a detection event on a message the oracle did not
  have in its deadlocked set at that cycle;
* **missed** (false negative) — a message still truly deadlocked when the
  run ends that no detector ever marked;
* **detection latency** — cycles from the oracle first placing a message
  in the deadlocked set (its current uninterrupted stretch) to the
  detection event, over true positives.

The verdict is written into the run's :class:`SimulationStats`
(``oracle_*`` fields), so it flows through ``to_dict`` and therefore into
the behavioural digest: the harness runs every case under *both* engines
and asserts the digests match — the fault subsystem's equivalence gate.

Results integrate with the campaign infrastructure: cells are cached in a
:class:`~repro.campaign.cache.ResultCache` keyed by the same
``config_hash`` campaigns use (fault schedules live inside the config, so
the key covers them), and optionally appended to a campaign manifest so
``repro-experiments campaign summary`` can fold conformance runs into its
report.
"""

from __future__ import annotations

import hashlib
import json
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.deadlock import find_deadlocked
from repro.faults.spec import random_faults
from repro.metrics.stats import SimulationStats
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator

#: Detectors graded by default: the paper's mechanism, the previous
#: mechanism, the crude header-blocked timeout, and the edge-chasing
#: probe competitor.
DEFAULT_DETECTORS = ("ndm", "pdm", "timeout", "probe")

#: Both engines always: digest agreement per schedule is the acceptance
#: gate for the whole fault subsystem.
ENGINES = ("scan", "event")


def quick_base_config() -> SimulationConfig:
    """The harness's quick regime: a 4x4 torus that actually wedges.

    One virtual channel per physical channel at half-saturation load
    produces a healthy mix of true deadlocks, fault-induced blocked trees
    and false-positive bait within a few hundred cycles.
    """
    config = SimulationConfig(
        radix=4,
        dimensions=2,
        vcs_per_channel=1,
        warmup_cycles=50,
        measure_cycles=500,
        drain_cycles=800,
        ground_truth_interval=100,
    )
    config.traffic.injection_rate = 0.5
    config.detector.threshold = 16
    return config


def channel_count(config: SimulationConfig) -> int:
    """Number of physical channels a simulator built from ``config`` has."""
    topo = config.build_topology()
    network = sum(
        1 for node in range(topo.num_nodes) for _ in topo.neighbors(node)
    )
    return network + topo.num_nodes * (
        config.injection_ports + config.ejection_ports
    )


def make_cases(
    config: SimulationConfig,
    num_schedules: int,
    base_seed: int = 0,
    faults_per_schedule: int = 6,
) -> List[Dict[str, Any]]:
    """Deterministic (seed, schedule) cases for ``config``'s topology."""
    horizon = config.warmup_cycles + config.measure_cycles
    topo = config.build_topology()
    channels = channel_count(config)
    cases: List[Dict[str, Any]] = []
    for k in range(num_schedules):
        seed = base_seed + k
        cases.append(
            {
                "id": f"s{seed}",
                "seed": seed,
                "faults": random_faults(
                    seed=seed,
                    num_channels=channels,
                    num_nodes=topo.num_nodes,
                    num_vcs=config.vcs_per_channel,
                    horizon=horizon,
                    count=faults_per_schedule,
                    max_window=max(2, horizon // 2),
                ),
            }
        )
    return cases


# ----------------------------------------------------------------------
# One graded run
# ----------------------------------------------------------------------

def stats_digest(stats: SimulationStats) -> str:
    """Behavioural digest: sha256 over the perf-free stats dict."""
    payload = stats.to_dict(include_perf=False)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def graded_run(config: SimulationConfig) -> Tuple[SimulationStats, str]:
    """Run one configuration, grading detections against the oracle.

    Fills the ``oracle_*`` fields of the returned stats and computes the
    behavioural digest.  The per-cycle oracle sweep is identical on both
    engines (it reads end-of-cycle state the engines agree on), so the
    digest doubles as the equivalence witness.
    """
    config.validate()
    if not config.ground_truth_on_detection:
        raise ValueError(
            "conformance grading needs ground_truth_on_detection=True "
            "(per-event true/false classification)"
        )
    sim = Simulator(config)
    stats = sim.stats
    #: message id -> first cycle of its current truly-deadlocked stretch.
    truth_since: Dict[int, int] = {}
    processed = 0

    def on_cycle(cycle: int) -> None:
        nonlocal processed
        # Grade the cycle's detection events against the stretch map from
        # *previous* cycles: detections fire during the routing phase, so
        # the message entered the oracle set at an earlier sweep (or this
        # very cycle, in which case latency is zero via the default).
        events = stats.detection_events
        while processed < len(events):
            event = events[processed]
            processed += 1
            if event.truly_deadlocked:
                latency = event.cycle - truth_since.get(
                    event.message_id, event.cycle
                )
                stats.oracle_true_positive_events += 1
                stats.oracle_latency_sum += latency
                stats.oracle_latency_count += 1
                if latency > stats.oracle_latency_max:
                    stats.oracle_latency_max = latency
            elif event.truly_deadlocked is False:
                stats.oracle_false_positive_events += 1
        # Advance the stretch map to this cycle's end-of-cycle truth.
        current = find_deadlocked(sim.active_messages, honor_faults=True)
        ids: set = set()
        for m in sorted(current, key=lambda m: m.id):
            ids.add(m.id)
            if m.id not in truth_since:
                truth_since[m.id] = cycle
        for mid in [k for k in truth_since if k not in ids]:
            del truth_since[mid]

    sim.run(on_cycle=on_cycle)
    # False negatives: still truly deadlocked at the end, never marked.
    final = find_deadlocked(sim.active_messages, honor_faults=True)
    stats.oracle_missed_messages = sum(
        1 for m in final if m.times_detected == 0
    )
    return stats, stats_digest(stats)


# ----------------------------------------------------------------------
# The full harness
# ----------------------------------------------------------------------

def run_conformance(
    base_config: Optional[SimulationConfig] = None,
    cases: Optional[List[Dict[str, Any]]] = None,
    detectors: Sequence[str] = DEFAULT_DETECTORS,
    num_schedules: int = 3,
    base_seed: int = 0,
    cache_dir: Optional[str] = None,
    manifest_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Grade every detector on every fault schedule, on both engines.

    Returns the JSON-ready report; ``report["engines_match"]`` is the
    harness verdict (every case produced identical digests per engine).
    """
    # Imported here: the campaign package pulls in the experiment tables,
    # which this leaf module should not load unless the harness runs.
    from repro.campaign.cache import ResultCache
    from repro.campaign.checkpoint import CampaignCheckpoint
    from repro.campaign.jobs import config_hash

    base = base_config if base_config is not None else quick_base_config()
    if cases is None:
        cases = make_cases(base, num_schedules, base_seed=base_seed)
    cache = ResultCache(cache_dir) if cache_dir else None
    manifest = (
        CampaignCheckpoint(manifest_path) if manifest_path else None
    )

    report: Dict[str, Any] = {
        "base_config": base.to_dict(),
        "engines": list(ENGINES),
        "schedules": cases,
        "detectors": {},
        "engines_match": True,
    }
    for detector in detectors:
        det_cases: List[Dict[str, Any]] = []
        totals: Dict[str, Any] = {
            "true_positives": 0,
            "false_positives": 0,
            "missed": 0,
            "latency_sum": 0,
            "latency_count": 0,
            "latency_max": 0,
            "detections": 0,
        }
        for case in cases:
            per_engine: Dict[str, Dict[str, Any]] = {}
            for engine in ENGINES:
                config = base.replace(
                    seed=case["seed"],
                    engine=engine,
                    faults=[dict(f) for f in case["faults"]],
                )
                config.detector.mechanism = detector
                key = config_hash(config)
                cached = cache.get(key) if cache is not None else None
                t0 = perf_counter()
                if cached is not None:
                    cell = cached
                    source = "cache"
                else:
                    stats, digest = graded_run(config)
                    cell = {
                        "digest": digest,
                        "conformance": stats.fault_conformance(),
                        "detections": stats.detections,
                        "delivered": stats.delivered,
                        "injected": stats.injected,
                        "cycles_run": stats.cycles_run,
                    }
                    source = "run"
                    if cache is not None:
                        cache.put(key, cell)
                per_engine[engine] = cell
                if manifest is not None:
                    manifest.record_cell(
                        key=f"faults/{detector}/{case['id']}/{engine}",
                        config_hash=key,
                        cell=cell["conformance"],
                        wall_time=perf_counter() - t0,
                        worker="conformance",
                        source=source,
                        engine=engine,
                    )
            digests = {cell["digest"] for cell in per_engine.values()}
            match = len(digests) == 1
            if not match:
                report["engines_match"] = False
            grade = per_engine[ENGINES[0]]
            conf = grade["conformance"]
            det_cases.append(
                {
                    "schedule": case["id"],
                    "seed": case["seed"],
                    "engines_match": match,
                    "digest": grade["digest"],
                    **conf,
                    "detections": grade["detections"],
                }
            )
            totals["true_positives"] += conf["true_positives"]
            totals["false_positives"] += conf["false_positives"]
            totals["missed"] += conf["missed"]
            totals["detections"] += grade["detections"]
            totals["latency_sum"] += conf["latency_sum"]
            totals["latency_count"] += conf["latency_count"]
            if conf["latency_max"] > totals["latency_max"]:
                totals["latency_max"] = conf["latency_max"]
        totals["latency_mean"] = (
            totals["latency_sum"] / totals["latency_count"]
            if totals["latency_count"]
            else None
        )
        report["detectors"][detector] = {
            "cases": det_cases,
            "totals": totals,
        }
    return report


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable per-detector conformance table."""
    lines = [
        f"fault conformance: {len(report['schedules'])} schedules x "
        f"{len(report['detectors'])} detectors x "
        f"{len(report['engines'])} engines",
        f"engine digests match: {report['engines_match']}",
        f"{'detector':<10} {'schedule':<9} {'TP':>4} {'FP':>4} "
        f"{'missed':>6} {'lat.mean':>9} {'lat.max':>8} {'events':>7}",
    ]
    def fmt_mean(mean: Optional[float]) -> str:
        return "-" if mean is None else format(mean, ".1f")

    for detector, entry in report["detectors"].items():
        for case in entry["cases"]:
            lines.append(
                f"{detector:<10} {case['schedule']:<9} "
                f"{case['true_positives']:>4} {case['false_positives']:>4} "
                f"{case['missed']:>6} "
                f"{fmt_mean(case['latency_mean']):>9} "
                f"{case['latency_max']:>8} {case['detections']:>7}"
            )
        totals = entry["totals"]
        lines.append(
            f"{detector:<10} {'TOTAL':<9} {totals['true_positives']:>4} "
            f"{totals['false_positives']:>4} {totals['missed']:>6} "
            f"{fmt_mean(totals['latency_mean']):>9} "
            f"{totals['latency_max']:>8} {totals['detections']:>7}"
        )
    return "\n".join(lines)
