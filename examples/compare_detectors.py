#!/usr/bin/env python3
"""Compare every deadlock detection mechanism on the same workload.

Reproduces the paper's central comparison (NDM vs. PDM vs. crude timeouts)
on one saturated uniform workload: same network, same traffic, same seed —
only the detection mechanism changes.  Reports the percentage of messages
each mechanism marks as possibly deadlocked, split into true and false
detections by the ground-truth deadlock analyzer.

Run:  python examples/compare_detectors.py [--rate 0.74] [--size sl]
"""

import argparse

from repro import SimulationConfig, Simulator


MECHANISMS = ("ndm", "pdm", "timeout", "source-age", "injection-stall")


def run_one(mechanism: str, rate: float, size: str, threshold: int, seed: int):
    config = SimulationConfig(radix=8, dimensions=2)
    config.traffic.pattern = "uniform"
    config.traffic.lengths = size
    config.traffic.injection_rate = rate
    config.detector.mechanism = mechanism
    config.detector.threshold = threshold
    config.warmup_cycles = 1000
    config.measure_cycles = 6000
    config.seed = seed
    return Simulator(config).run()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=0.74,
                        help="offered load in flits/cycle/node")
    parser.add_argument("--size", default="sl",
                        help="message size workload: s, l, L or sl")
    parser.add_argument("--threshold", type=int, default=32)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print(
        f"uniform traffic @ {args.rate} flits/cycle/node, size={args.size}, "
        f"threshold={args.threshold}\n"
    )
    print(f"{'mechanism':16} {'detected%':>10} {'true':>6} {'false':>6} "
          f"{'recovered':>10} {'throughput':>11} {'avg lat':>8}")
    for mechanism in MECHANISMS:
        stats = run_one(
            mechanism, args.rate, args.size, args.threshold, args.seed
        )
        lat = stats.average_latency()
        print(
            f"{mechanism:16} {stats.detection_percentage():>9.3f}% "
            f"{stats.true_detections:>6} {stats.false_detections:>6} "
            f"{stats.recoveries:>10} {stats.throughput():>11.3f} "
            f"{lat if lat is not None else float('nan'):>8.0f}"
        )
    print(
        "\nLower detected% at equal threshold means fewer false deadlocks "
        "and less recovery overhead (the paper's headline claim for NDM)."
    )


if __name__ == "__main__":
    main()
