#!/usr/bin/env python3
"""Paper-scale run: the 512-node 8-ary 3-cube of the paper's Section 4.1.

Runs one saturated uniform workload on the full-size network with the NDM
(t2 = 32) and prints the run summary plus the channel-utilization picture.
Expect a few minutes of wall-clock time — the quick 64-node grid used by
the benchmarks exists precisely so you do not have to run this for every
experiment.

Run:  python examples/paper_scale.py [--rate 0.775] [--cycles 5000]
"""

import argparse
import time

from repro import SimulationConfig, Simulator
from repro.analysis.channels import hottest_nodes, inactivity_histogram


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=0.775,
                        help="offered load (saturation is ~0.775)")
    parser.add_argument("--cycles", type=int, default=5000)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    config = SimulationConfig(radix=8, dimensions=3)  # 512 nodes
    config.traffic.pattern = "uniform"
    config.traffic.lengths = "sl"
    config.traffic.injection_rate = args.rate
    config.detector.mechanism = "ndm"
    config.detector.threshold = 32
    config.warmup_cycles = max(args.cycles // 5, 500)
    config.measure_cycles = args.cycles
    config.seed = args.seed

    print(f"simulating 512-node 8-ary 3-cube @ {args.rate} flits/cycle/node "
          f"for {config.warmup_cycles}+{args.cycles} cycles ...")
    sim = Simulator(config)
    start = time.time()
    stats = sim.run()
    elapsed = time.time() - start

    print()
    print(stats.summary())
    print()
    print(f"wall clock            : {elapsed:.1f}s "
          f"({stats.cycles_run / elapsed:.0f} cycles/s)")
    print(f"hottest nodes (VC occupancy): "
          f"{[(n, round(o, 2)) for n, o in hottest_nodes(sim, 5)]}")
    histogram = inactivity_histogram(sim, bucket=16, cap=128)
    print(f"channel inactivity histogram (16-cycle buckets): "
          f"{dict(sorted(histogram.items()))}")


if __name__ == "__main__":
    main()
