#!/usr/bin/env python3
"""Tune the NDM detection threshold t2 (paper Section 4.2).

Sweeps t2 across loads and message sizes and prints the detected-message
percentage grid, illustrating the paper's conclusion: a single constant,
low threshold (the paper picks 32 cycles) keeps false detections low
regardless of message length, unlike the PDM whose useful threshold grows
with message length.

Run:  python examples/threshold_tuning.py [--mechanism ndm]
"""

import argparse

from repro import SimulationConfig, Simulator
from repro.experiments.spec import CALIBRATED_SATURATION_QUICK

THRESHOLDS = (2, 8, 32, 128)
SIZES = ("s", "l", "sl")
LOAD_FRACTIONS = (0.785, 1.0)


def run_cell(mechanism: str, threshold: int, size: str, rate: float, seed: int) -> float:
    config = SimulationConfig(radix=8, dimensions=2)
    config.traffic.pattern = "uniform"
    config.traffic.lengths = size
    config.traffic.injection_rate = rate
    config.detector.mechanism = mechanism
    config.detector.threshold = threshold
    config.warmup_cycles = 800
    config.measure_cycles = 4000
    config.seed = seed
    return Simulator(config).run().detection_percentage()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mechanism", default="ndm",
                        choices=("ndm", "pdm", "timeout"))
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    saturation = CALIBRATED_SATURATION_QUICK["uniform"]
    print(f"mechanism={args.mechanism}; uniform traffic; "
          f"saturation ~ {saturation} flits/cycle/node\n")
    header = ["threshold"]
    for fraction in LOAD_FRACTIONS:
        for size in SIZES:
            header.append(f"{size}@{fraction:.0%}")
    print(" ".join(f"{h:>9}" for h in header))
    for threshold in THRESHOLDS:
        row = [f"Th {threshold}"]
        for fraction in LOAD_FRACTIONS:
            rate = round(fraction * saturation, 4)
            for size in SIZES:
                pct = run_cell(args.mechanism, threshold, size, rate, args.seed)
                row.append(f"{pct:.3f}")
        print(" ".join(f"{c:>9}" for c in row))
    print(
        "\nPick the smallest threshold whose false-detection percentage is "
        "acceptable across ALL sizes: detection latency grows with t2, so "
        "over-provisioning the threshold delays true deadlock recovery."
    )


if __name__ == "__main__":
    main()
