#!/usr/bin/env python3
"""Narrated walkthrough of the paper's Figures 2-5.

Rebuilds each blocked-message configuration from the paper on a real
simulated torus (one virtual channel per physical channel, as drawn) and
shows what each detection mechanism does:

* Figure 2 — a tree of blocked messages behind an advancing root:
  no deadlock.  The PDM falsely detects C and D; the NDM detects nothing.
* Figure 3 — message E closes a true deadlock {B, C, D, E}; the NDM
  marks only B (the message that saw the root advance).
* Figure 4 — progressive recovery of B removes the deadlock.
* Figure 5 — newcomer F re-closes the cycle; the first flit of F
  re-labels the root, so C detects the new deadlock.

Run:  python examples/figure_walkthrough.py
"""

from repro.analysis.deadlock import find_deadlocked
from repro.figures.scenarios import (
    build_figure2,
    build_figure3,
    build_figure4,
    build_figure5,
)
from repro.network.types import MessageStatus


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def figure2() -> None:
    banner("Figure 2: B, C, D blocked behind advancing A (no deadlock)")
    for mechanism in ("ndm", "pdm"):
        scenario = build_figure2(mechanism, threshold=16)
        scenario.run(600)
        statuses = {n: m.status.value for n, m in scenario.messages.items()}
        print(f"{mechanism.upper():4}: detections={scenario.detected_names() or 'none'}"
              f"  final statuses={statuses}")
    print("-> The PDM falsely marks C and D; the NDM correctly stays quiet "
          "and every message is delivered.")


def figure3() -> None:
    banner("Figure 3: E takes A's channel and closes a true deadlock")
    scenario = build_figure3("ndm", threshold=16)
    scenario.run(60)
    deadlocked = sorted(
        scenario.name_of(m.id) for m in find_deadlocked(scenario.sim.active_messages)
    )
    print(f"ground truth after E blocks: deadlocked set = {deadlocked}")
    scenario.run(300)
    print(f"NDM detections: {scenario.detected_names()}")
    print("-> Only B is marked: it is the message that observed the root "
          "(A, later replaced by E) advance.")

    scenario = build_figure3("pdm", threshold=16)
    scenario.run(360)
    print(f"PDM detections: {sorted(set(scenario.detected_names()))}")
    print("-> The PDM marks every member, quadrupling recovery overhead.")


def figure4() -> None:
    banner("Figure 4: recovering B removes the deadlock")
    scenario = build_figure4(threshold=16)
    done = scenario.run_until(
        lambda s: all(
            m.status is MessageStatus.DELIVERED for m in s.messages.values()
        ),
        limit=3000,
    )
    print(f"detections: {scenario.detected_names()}   all delivered: {done}")
    print(f"recoveries performed: {scenario.sim.stats.recoveries}")


def figure5() -> None:
    banner("Figure 5: F re-closes the cycle; C detects the new deadlock")
    scenario, removed_b = build_figure5("ndm", threshold=16)
    scenario.run(400)
    print(f"detections so far (B from Figure 3, then ...): "
          f"{scenario.detected_names()}")
    deadlocked = sorted(
        scenario.name_of(m.id) for m in find_deadlocked(scenario.sim.active_messages)
    )
    print(f"ground truth: new deadlocked set = {deadlocked}")
    print("-> F's first flit across the channel B freed promoted C's G/P "
          "flag to G, so C (and only C) detects the re-formed deadlock.")


def main() -> None:
    figure2()
    figure3()
    figure4()
    figure5()
    print()


if __name__ == "__main__":
    main()
