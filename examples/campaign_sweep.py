#!/usr/bin/env python3
"""Campaign engine walkthrough: parallel, cached, resumable table runs.

Runs a small threshold-by-load grid of NDM simulations three ways —
serial, on a two-process pool, and again against a warm on-disk cache —
then shows what a resumed campaign reuses.  The point to notice: every
variant prints the *same table, byte for byte*, because jobs carry fully
resolved configs (content-hashed) and the engine reassembles results in
canonical cell order.

Run:  python examples/campaign_sweep.py
"""

import tempfile
import time
from pathlib import Path

from repro.campaign import (
    CampaignCheckpoint,
    ResultCache,
    render_summary,
    run_table_campaign,
    summarize_manifest,
)
from repro.experiments.report import render_table
from repro.experiments.spec import TableSpec, base_config


def small_table() -> TableSpec:
    """A 3-threshold x 2-load slice of Table 2's grid (NDM, uniform)."""
    return TableSpec(
        table_id=2,
        title="NDM, uniform traffic [example slice]",
        mechanism="ndm",
        pattern="uniform",
        sizes=("s",),
        load_fractions=(0.857, 1.0),
        paper_rates=(0.514, 0.600),
        thresholds=(8, 32, 128),
        saturated_loads=(1,),
    )


def small_base():
    base = base_config(full=False)
    base.radix = 4  # 16 nodes keeps the example quick
    base.warmup_cycles = 200
    base.measure_cycles = 1000
    return base


def timed(label, **kwargs):
    start = time.perf_counter()
    result = run_table_campaign(small_table(), small_base(),
                                saturation=0.45, **kwargs)
    print(f"{label}: {time.perf_counter() - start:.2f}s")
    return result


def main() -> None:
    serial = timed("serial run      (--jobs 1)")
    pooled = timed("process pool    (--jobs 2)", num_workers=2)
    assert render_table(pooled) == render_table(serial)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        manifest = Path(tmp) / "manifest.jsonl"
        checkpoint = CampaignCheckpoint(manifest)

        cold = timed("cold cache      (populates) ", num_workers=2,
                     cache=cache, checkpoint=checkpoint)
        warm_cache = ResultCache(tmp)
        warm = timed("warm cache      (100% hits) ", num_workers=2,
                     cache=warm_cache, checkpoint=checkpoint)
        print(f"  second run served {warm_cache.hits}/{warm_cache.hits + warm_cache.misses} "
              "cells from the cache")
        assert render_table(cold) == render_table(serial)
        assert render_table(warm) == render_table(serial)

        # A resumed campaign replays the manifest instead of simulating.
        resumed = timed("resumed         (manifest)  ",
                        checkpoint=CampaignCheckpoint(manifest), resume=True)
        assert render_table(resumed) == render_table(serial)

        print("\ncampaign summary " + "-" * 43)
        print(render_summary(summarize_manifest(manifest)))

    print("\n" + render_table(serial))
    print("\nall four runs produced this table byte-identically")


if __name__ == "__main__":
    main()
