#!/usr/bin/env python3
"""Quickstart: simulate a wormhole torus with the paper's NDM detector.

Builds the paper's network model (true fully adaptive routing, 3 virtual
channels per physical channel, 4-flit buffers) on a 64-node 8-ary 2-cube,
drives it with uniform traffic near saturation, and prints the run summary
including how many messages the new deadlock detection mechanism marked.

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, Simulator


def main() -> None:
    config = SimulationConfig(radix=8, dimensions=2)

    # Workload: uniform destinations, 16-flit messages, ~90% of saturation.
    config.traffic.pattern = "uniform"
    config.traffic.lengths = "s"
    config.traffic.injection_rate = 0.65

    # Deadlock handling: the paper's new detection mechanism (NDM) with
    # t2 = 32 cycles (the threshold the paper recommends), plus the
    # software-based progressive recovery it is designed for.
    config.detector.mechanism = "ndm"
    config.detector.threshold = 32
    config.recovery = "progressive"

    config.warmup_cycles = 1000
    config.measure_cycles = 5000
    config.seed = 42

    sim = Simulator(config)
    stats = sim.run()

    print("=== quickstart: 8-ary 2-cube, uniform traffic, NDM(t2=32) ===")
    print(stats.summary())
    print()
    print(
        f"The NDM marked {stats.detection_percentage():.3f}% of messages as "
        "possibly deadlocked; compare with the paper's Table 2."
    )


if __name__ == "__main__":
    main()
