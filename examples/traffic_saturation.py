#!/usr/bin/env python3
"""Saturation behaviour of every traffic pattern in the paper.

For each destination distribution (uniform, locality, bit-reversal,
perfect-shuffle, butterfly, hot-spot) this example measures the saturation
point of the 64-node torus, then runs at saturation with the NDM and
reports throughput, latency and detection percentage — the row of the
paper's tables where detection matters most.

Run:  python examples/traffic_saturation.py [--measure]
      (--measure re-runs the saturation search instead of using the
       calibrated values; slower)
"""

import argparse

from repro import SimulationConfig, Simulator
from repro.analysis.saturation import find_saturation
from repro.experiments.spec import CALIBRATED_SATURATION_QUICK

PATTERNS = {
    "uniform": {},
    "locality": {"radius": 1},
    "bit-reversal": {},
    "perfect-shuffle": {},
    "butterfly": {},
    "hot-spot": {"fraction": 0.4},  # quick-mode hot fraction, see DESIGN.md
}


def saturation_for(pattern: str, params: dict, measure: bool) -> float:
    if not measure and pattern in CALIBRATED_SATURATION_QUICK:
        return CALIBRATED_SATURATION_QUICK[pattern]
    config = SimulationConfig(radix=8, dimensions=2)
    config.traffic.pattern = pattern
    config.traffic.pattern_params = params
    config.detector.mechanism = "none"
    config.warmup_cycles = 500
    config.measure_cycles = 2000
    config.ground_truth_interval = 0
    return find_saturation(config).saturation_rate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--measure", action="store_true")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"{'pattern':16} {'sat rate':>9} {'accepted':>9} {'avg lat':>8} "
          f"{'detected%':>10} {'deadlock?':>9}")
    for pattern, params in PATTERNS.items():
        rate = saturation_for(pattern, params, args.measure)
        config = SimulationConfig(radix=8, dimensions=2)
        config.traffic.pattern = pattern
        config.traffic.pattern_params = params
        config.traffic.lengths = "s"
        config.traffic.injection_rate = rate
        config.detector.mechanism = "ndm"
        config.detector.threshold = 32
        config.warmup_cycles = 800
        config.measure_cycles = 4000
        config.seed = args.seed
        stats = Simulator(config).run()
        lat = stats.average_latency()
        print(
            f"{pattern:16} {rate:>9.3f} {stats.throughput():>9.3f} "
            f"{lat if lat is not None else float('nan'):>8.0f} "
            f"{stats.detection_percentage():>9.3f}% "
            f"{'yes' if stats.had_true_deadlock() else 'no':>9}"
        )
    print(
        "\nPatterns saturate at very different rates (compare the paper's "
        "per-table injection-rate columns); the harness therefore places "
        "its loads at fixed fractions of each pattern's saturation."
    )


if __name__ == "__main__":
    main()
