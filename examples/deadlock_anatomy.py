#!/usr/bin/env python3
"""Anatomy of a deadlock: wait-for graph, knot and resolution, traced.

Rebuilds the paper's Figure 3 deadlock on the simulator with event tracing
enabled, prints the channel wait-for structure (who waits on whom), the
knot the ground-truth oracle finds, the candidate cycles in the wait
graph, and finally the traced lifecycle of the one message the NDM marks.

Run:  python examples/deadlock_anatomy.py
"""

from repro.analysis.waitgraph import (
    build_wait_graph,
    describe_deadlock,
    tree_depth_histogram,
)
from repro.figures.scenarios import build_figure3
from repro.network.tracing import Tracer, format_event
from repro.network.types import MessageStatus


def main() -> None:
    scenario = build_figure3("ndm", threshold=16, recovery="progressive")
    sim = scenario.sim
    sim.tracer = Tracer()

    # Let the deadlock close (E needs a few cycles to reach D's channel)
    # but snapshot before the detection threshold expires.
    scenario.run(10)
    names = {m.id: name for name, m in scenario.messages.items()}

    print("=== wait-for structure just after E blocks ===")
    graph = build_wait_graph(sim.active_messages)
    for message_id, edges in sorted(graph.edges.items()):
        waiter = names.get(message_id, message_id)
        holders = [names.get(e.holder.id, e.holder.id) for e in edges]
        free = graph.free_alternatives[message_id]
        print(f"  {waiter} waits on {holders} (free alternatives: {free})")

    print("\n=== knot (ground truth) ===")
    for line in describe_deadlock(graph, names):
        print(f"  {line}")

    print("\n=== candidate cycles in the wait graph ===")
    for cycle in graph.candidate_cycles():
        print("  " + " -> ".join(str(names.get(i, i)) for i in cycle))

    print("\n=== tree depth histogram ===")
    print(f"  {tree_depth_histogram(graph)}")

    # Let detection + recovery resolve it.
    scenario.run_until(
        lambda s: all(
            m.status is MessageStatus.DELIVERED for m in s.messages.values()
        ),
        limit=3000,
    )

    print("\n=== traced lifecycle of the detected message (B) ===")
    b = scenario.messages["B"]
    for event in sim.tracer.for_message(b.id):
        print("  " + format_event(event))

    print(
        f"\nDetections: {scenario.detected_names()} "
        f"(1 message marked for a 4-message deadlock; the PDM would mark all 4)"
    )


if __name__ == "__main__":
    main()
