#!/usr/bin/env python3
"""Progressive vs. regressive deadlock recovery under the NDM.

The paper motivates *progressive* recovery (absorb the deadlocked packet
and deliver it through dedicated resources, Martinez et al. [13]) over
*regressive* abort-and-retry: killing a worm wastes all the progress its
flits made.  This example runs the same saturated workload under each
recovery scheme and compares delivered throughput, latency and the number
of recovery actions.

Run:  python examples/recovery_comparison.py
"""

import argparse

from repro import SimulationConfig, Simulator

SCHEMES = ("progressive", "progressive-reinject", "regressive")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=0.74)
    parser.add_argument("--threshold", type=int, default=16)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    print(f"uniform sl traffic @ {args.rate} flits/cycle/node, "
          f"NDM(t2={args.threshold})\n")
    print(f"{'recovery':22} {'throughput':>11} {'avg lat':>8} {'max lat':>8} "
          f"{'recov':>6} {'aborts':>7} {'detected%':>10}")
    for scheme in SCHEMES:
        config = SimulationConfig(radix=8, dimensions=2)
        config.traffic.pattern = "uniform"
        config.traffic.lengths = "sl"
        config.traffic.injection_rate = args.rate
        config.detector.mechanism = "ndm"
        config.detector.threshold = args.threshold
        config.recovery = scheme
        config.warmup_cycles = 1000
        config.measure_cycles = 6000
        config.seed = args.seed
        stats = Simulator(config).run()
        lat = stats.average_latency()
        print(
            f"{scheme:22} {stats.throughput():>11.3f} "
            f"{lat if lat is not None else float('nan'):>8.0f} "
            f"{stats.max_latency:>8} {stats.recoveries:>6} "
            f"{stats.aborts:>7} {stats.detection_percentage():>9.3f}%"
        )
    print(
        "\nRegressive recovery re-transmits the whole message from the "
        "source, inflating tail latency; progressive recovery preserves "
        "the worm's progress (the paper's recommended pairing with NDM)."
    )


if __name__ == "__main__":
    main()
